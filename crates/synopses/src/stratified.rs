//! Blocking stratified sampler used by the BlinkDB-style offline baseline.
//!
//! Unlike the online distinct sampler, classic stratified sampling caps every
//! group at `cap` rows (keeping all rows of smaller groups) and therefore
//! needs to know the group of every row before deciding — the paper calls it
//! a blocking operator requiring two passes, which is exactly why Taster does
//! not use it online. The offline baselines can afford it.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use taster_storage::batch::RecordBatch;
use taster_storage::row_key::RowKeys;
use taster_storage::StorageError;

use crate::sample::WeightedSample;

/// An offline stratified sampler: keeps at most `cap` rows per distinct
/// combination of the stratification columns, chosen uniformly at random via
/// per-group reservoir sampling.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    stratification: Vec<String>,
    cap: usize,
    rng: SmallRng,
}

impl StratifiedSampler {
    /// Create a sampler keeping at most `cap` rows per group.
    pub fn new(stratification: Vec<String>, cap: usize, seed: u64) -> Self {
        Self {
            stratification,
            cap: cap.max(1),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The per-group row cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The stratification attributes.
    pub fn stratification(&self) -> &[String] {
        &self.stratification
    }

    /// Build the stratified sample over a set of partitions (conceptually the
    /// offline preparation pass of BlinkDB).
    pub fn sample_partitions(
        &mut self,
        partitions: &[RecordBatch],
    ) -> Result<WeightedSample, StorageError> {
        // Pass 1: per-group reservoirs of *global* row positions. Groups are
        // keyed by row-encoded bytes: the stratification columns are encoded
        // once per partition into a reusable buffer and only genuinely new
        // groups pay an owned-key allocation.
        #[derive(Default)]
        struct Reservoir {
            seen: usize,
            rows: Vec<(usize, usize)>, // (partition, row)
        }
        let mut reservoirs: HashMap<Vec<u8>, Reservoir> = HashMap::new();
        let mut keys = RowKeys::new();
        let mut source_rows = 0usize;

        for (pi, batch) in partitions.iter().enumerate() {
            source_rows += batch.num_rows();
            let strat_cols: Vec<&taster_storage::ColumnData> = self
                .stratification
                .iter()
                .map(|name| batch.column_by_name(name))
                .collect::<Result<Vec<_>, _>>()?;
            keys.reencode_columns(&strat_cols, batch.num_rows());
            for row in 0..batch.num_rows() {
                let key = keys.key(row);
                if !reservoirs.contains_key(key) {
                    reservoirs.insert(key.to_vec(), Reservoir::default());
                }
                let res = reservoirs.get_mut(key).expect("just inserted");
                res.seen += 1;
                if res.rows.len() < self.cap {
                    res.rows.push((pi, row));
                } else {
                    let j = self.rng.random_range(0..res.seen);
                    if j < self.cap {
                        res.rows[j] = (pi, row);
                    }
                }
            }
        }

        // Pass 2: gather retained rows, weighting each by group_size / kept.
        let mut per_partition: Vec<Vec<(usize, f64)>> = vec![Vec::new(); partitions.len()];
        for res in reservoirs.values() {
            let kept = res.rows.len();
            let w = res.seen as f64 / kept as f64;
            for &(pi, row) in &res.rows {
                per_partition[pi].push((row, w));
            }
        }

        let mut out: Option<WeightedSample> = None;
        for (pi, mut rows) in per_partition.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            rows.sort_by_key(|&(r, _)| r);
            let idx: Vec<usize> = rows.iter().map(|&(r, _)| r).collect();
            let weights: Vec<f64> = rows.iter().map(|&(_, w)| w).collect();
            let s = WeightedSample {
                rows: partitions[pi].take(&idx),
                weights,
                stratification: self.stratification.clone(),
                probability: 0.0,
                source_rows: 0,
            };
            match &mut out {
                None => out = Some(s),
                Some(acc) => acc.merge(&s)?,
            }
        }
        let mut sample = out.unwrap_or_else(|| {
            WeightedSample::empty(
                partitions
                    .first()
                    .map(|b| b.schema().clone())
                    .unwrap_or_else(|| std::sync::Arc::new(taster_storage::Schema::empty())),
            )
        });
        sample.source_rows = source_rows;
        sample.stratification = self.stratification.clone();
        Ok(sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::partition::split_batch;

    fn batch(n: usize, groups: i64) -> RecordBatch {
        BatchBuilder::new()
            .column("g", (0..n as i64).map(|i| i % groups).collect::<Vec<_>>())
            .column("v", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn caps_every_group_and_keeps_small_groups_whole() {
        let b = batch(10_000, 10);
        let parts = split_batch(&b, 4);
        let mut s = StratifiedSampler::new(vec!["g".into()], 50, 3);
        let sample = s.sample_partitions(&parts).unwrap();

        let g = sample.rows.column_by_name("g").unwrap();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for i in 0..g.len() {
            *counts.entry(g.value(i).as_i64().unwrap()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 10);
        for (_, c) in counts {
            assert_eq!(c, 50);
        }
        assert_eq!(sample.source_rows, 10_000);
    }

    #[test]
    fn weights_reconstruct_group_sizes() {
        let b = batch(5_000, 5);
        let mut s = StratifiedSampler::new(vec!["g".into()], 20, 7);
        let sample = s.sample_partitions(&[b]).unwrap();
        let g = sample.rows.column_by_name("g").unwrap();
        let mut est: HashMap<i64, f64> = HashMap::new();
        for i in 0..g.len() {
            *est.entry(g.value(i).as_i64().unwrap()).or_insert(0.0) += sample.weights[i];
        }
        for (_, e) in est {
            assert!((e - 1_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn small_groups_are_not_scaled() {
        let b = batch(30, 10); // 3 rows per group, below the cap
        let mut s = StratifiedSampler::new(vec!["g".into()], 10, 1);
        let sample = s.sample_partitions(&[b]).unwrap();
        assert_eq!(sample.len(), 30);
        assert!(sample.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn missing_column_errors() {
        let b = batch(10, 2);
        let mut s = StratifiedSampler::new(vec!["missing".into()], 5, 1);
        assert!(s.sample_partitions(&[b]).is_err());
    }
}
