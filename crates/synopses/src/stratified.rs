//! Blocking stratified sampler used by the BlinkDB-style offline baseline.
//!
//! Unlike the online distinct sampler, classic stratified sampling caps every
//! group at `cap` rows (keeping all rows of smaller groups) and therefore
//! needs to know the group of every row before deciding — the paper calls it
//! a blocking operator requiring two passes, which is exactly why Taster does
//! not use it online. The offline baselines can afford it.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use taster_storage::batch::RecordBatch;
use taster_storage::row_key::RowKeys;
use taster_storage::StorageError;

use crate::sample::WeightedSample;

/// An offline stratified sampler: keeps at most `cap` rows per distinct
/// combination of the stratification columns, chosen uniformly at random via
/// per-group reservoir sampling.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    stratification: Vec<String>,
    cap: usize,
    rng: SmallRng,
}

impl StratifiedSampler {
    /// Create a sampler keeping at most `cap` rows per group.
    pub fn new(stratification: Vec<String>, cap: usize, seed: u64) -> Self {
        Self {
            stratification,
            cap: cap.max(1),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The per-group row cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The stratification attributes.
    pub fn stratification(&self) -> &[String] {
        &self.stratification
    }

    /// Build the stratified sample over a set of partitions (conceptually the
    /// offline preparation pass of BlinkDB). Accepts owned or `Arc`-shared
    /// partitions.
    pub fn sample_partitions<B: std::borrow::Borrow<RecordBatch>>(
        &mut self,
        partitions: &[B],
    ) -> Result<WeightedSample, StorageError> {
        // Pass 1: per-group reservoirs of *global* row positions. Groups are
        // keyed by row-encoded bytes: the stratification columns are encoded
        // once per partition into a reusable buffer and only genuinely new
        // groups pay an owned-key allocation.
        #[derive(Default)]
        struct Reservoir {
            seen: usize,
            rows: Vec<(usize, usize)>, // (partition, row)
        }
        let mut reservoirs: HashMap<Vec<u8>, Reservoir> = HashMap::new();
        let mut keys = RowKeys::new();
        let mut source_rows = 0usize;

        for (pi, batch) in partitions.iter().enumerate() {
            let batch = batch.borrow();
            source_rows += batch.num_rows();
            let strat_cols: Vec<&taster_storage::ColumnData> = self
                .stratification
                .iter()
                .map(|name| batch.column_by_name(name))
                .collect::<Result<Vec<_>, _>>()?;
            keys.reencode_columns(&strat_cols, batch.num_rows());
            for row in 0..batch.num_rows() {
                let key = keys.key(row);
                if !reservoirs.contains_key(key) {
                    reservoirs.insert(key.to_vec(), Reservoir::default());
                }
                let res = reservoirs.get_mut(key).expect("just inserted");
                res.seen += 1;
                if res.rows.len() < self.cap {
                    res.rows.push((pi, row));
                } else {
                    let j = self.rng.random_range(0..res.seen);
                    if j < self.cap {
                        res.rows[j] = (pi, row);
                    }
                }
            }
        }

        // Pass 2: gather retained rows, weighting each by group_size / kept.
        let mut per_partition: Vec<Vec<(usize, f64)>> = vec![Vec::new(); partitions.len()];
        for res in reservoirs.values() {
            let kept = res.rows.len();
            let w = res.seen as f64 / kept as f64;
            for &(pi, row) in &res.rows {
                per_partition[pi].push((row, w));
            }
        }

        let mut out: Option<WeightedSample> = None;
        for (pi, mut rows) in per_partition.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            rows.sort_by_key(|&(r, _)| r);
            let idx: Vec<usize> = rows.iter().map(|&(r, _)| r).collect();
            let weights: Vec<f64> = rows.iter().map(|&(_, w)| w).collect();
            let s = WeightedSample {
                rows: partitions[pi].borrow().take(&idx),
                weights,
                stratification: self.stratification.clone(),
                probability: 0.0,
                source_rows: 0,
            };
            match &mut out {
                None => out = Some(s),
                Some(acc) => acc.merge(&s)?,
            }
        }
        let mut sample = out.unwrap_or_else(|| {
            WeightedSample::empty(
                partitions
                    .first()
                    .map(|b| b.borrow().schema().clone())
                    .unwrap_or_else(|| std::sync::Arc::new(taster_storage::Schema::empty())),
            )
        });
        sample.source_rows = source_rows;
        sample.stratification = self.stratification.clone();
        Ok(sample)
    }
}

/// Incremental per-group reservoir maintenance for stratified samples.
///
/// The blocking [`StratifiedSampler`] reads its whole input twice, which is
/// fine offline but useless once the table keeps growing. The reservoir
/// **owns** its retained rows (copied out of the input batches), so it can
/// [`absorb`](Self::absorb) appended batches one at a time — classic
/// Algorithm-R reservoir sampling per stratum — and materialize a weighted
/// sample of the entire stream seen so far at any point, without ever
/// revisiting old rows.
///
/// ```
/// use taster_storage::batch::BatchBuilder;
/// use taster_synopses::stratified::StratifiedReservoir;
///
/// let mut res = StratifiedReservoir::new(vec!["g".into()], 4, 11);
/// for chunk in 0..5 {
///     let batch = BatchBuilder::new()
///         .column("g", (0..100i64).map(|i| i % 3).collect::<Vec<_>>())
///         .column("v", (0..100).map(|i| (chunk * 100 + i) as f64).collect::<Vec<_>>())
///         .build()
///         .unwrap();
///     res.absorb(&batch).unwrap();
/// }
/// let sample = res.to_sample().unwrap();
/// assert_eq!(sample.len(), 3 * 4); // every stratum capped at 4 rows
/// assert_eq!(sample.source_rows, 500);
/// // Per-group weight sums reconstruct the true group sizes.
/// let total: f64 = sample.weights.iter().sum();
/// assert!((total - 500.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct StratifiedReservoir {
    stratification: Vec<String>,
    cap: usize,
    rng: SmallRng,
    schema: Option<taster_storage::schema::SchemaRef>,
    groups: HashMap<Vec<u8>, OwnedReservoir>,
    keys: RowKeys,
    source_rows: usize,
}

#[derive(Debug, Clone, Default)]
struct OwnedReservoir {
    seen: usize,
    /// Retained rows, materialized as values (schema order).
    rows: Vec<Vec<taster_storage::Value>>,
}

impl StratifiedReservoir {
    /// Create a maintainer keeping at most `cap` rows per distinct
    /// combination of the stratification columns.
    pub fn new(stratification: Vec<String>, cap: usize, seed: u64) -> Self {
        Self {
            stratification,
            cap: cap.max(1),
            rng: SmallRng::seed_from_u64(seed),
            schema: None,
            groups: HashMap::new(),
            keys: RowKeys::new(),
            source_rows: 0,
        }
    }

    /// Rows folded in so far.
    pub fn rows_seen(&self) -> usize {
        self.source_rows
    }

    /// Number of strata observed so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Fold one (appended) batch into the per-stratum reservoirs.
    pub fn absorb(&mut self, batch: &RecordBatch) -> Result<(), StorageError> {
        match &self.schema {
            None => self.schema = Some(batch.schema().clone()),
            Some(s) if s.as_ref() == batch.schema().as_ref() => {}
            Some(_) => {
                return Err(StorageError::Invalid(
                    "stratified reservoir fed batches with different schemas".to_string(),
                ))
            }
        }
        let strat_cols: Vec<&taster_storage::ColumnData> = self
            .stratification
            .iter()
            .map(|name| batch.column_by_name(name))
            .collect::<Result<Vec<_>, _>>()?;
        self.keys.reencode_columns(&strat_cols, batch.num_rows());
        for row in 0..batch.num_rows() {
            let key = self.keys.key(row);
            if !self.groups.contains_key(key) {
                self.groups.insert(key.to_vec(), OwnedReservoir::default());
            }
            let res = self.groups.get_mut(key).expect("just inserted");
            res.seen += 1;
            if res.rows.len() < self.cap {
                res.rows.push(batch.row(row));
            } else {
                let j = self.rng.random_range(0..res.seen);
                if j < self.cap {
                    res.rows[j] = batch.row(row);
                }
            }
        }
        self.source_rows += batch.num_rows();
        Ok(())
    }

    /// Materialize the current state as a weighted sample: each retained row
    /// carries weight `group_size / kept`, so per-group weight sums stay
    /// unbiased. Returns `None` before any batch has been absorbed (no schema
    /// to build a sample from).
    pub fn to_sample(&self) -> Option<WeightedSample> {
        let schema = self.schema.clone()?;
        let mut columns: Vec<taster_storage::ColumnData> = schema
            .fields()
            .iter()
            .map(|f| taster_storage::ColumnData::new_empty(f.data_type))
            .collect();
        let mut weights = Vec::new();
        // Deterministic output order: sort groups by key bytes.
        let mut keys: Vec<&Vec<u8>> = self.groups.keys().collect();
        keys.sort();
        for key in keys {
            let res = &self.groups[key];
            let w = res.seen as f64 / res.rows.len().max(1) as f64;
            for row in &res.rows {
                for (col, v) in columns.iter_mut().zip(row) {
                    col.push(v).expect("reservoir rows match the schema");
                }
                weights.push(w);
            }
        }
        let rows = RecordBatch::try_new(schema, columns).expect("columns built from schema");
        Some(WeightedSample {
            rows,
            weights,
            stratification: self.stratification.clone(),
            probability: 0.0,
            source_rows: self.source_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::partition::split_batch;

    fn batch(n: usize, groups: i64) -> RecordBatch {
        BatchBuilder::new()
            .column("g", (0..n as i64).map(|i| i % groups).collect::<Vec<_>>())
            .column("v", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn caps_every_group_and_keeps_small_groups_whole() {
        let b = batch(10_000, 10);
        let parts = split_batch(&b, 4);
        let mut s = StratifiedSampler::new(vec!["g".into()], 50, 3);
        let sample = s.sample_partitions(&parts).unwrap();

        let g = sample.rows.column_by_name("g").unwrap();
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for i in 0..g.len() {
            *counts.entry(g.value(i).as_i64().unwrap()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 10);
        for (_, c) in counts {
            assert_eq!(c, 50);
        }
        assert_eq!(sample.source_rows, 10_000);
    }

    #[test]
    fn weights_reconstruct_group_sizes() {
        let b = batch(5_000, 5);
        let mut s = StratifiedSampler::new(vec!["g".into()], 20, 7);
        let sample = s.sample_partitions(&[b]).unwrap();
        let g = sample.rows.column_by_name("g").unwrap();
        let mut est: HashMap<i64, f64> = HashMap::new();
        for i in 0..g.len() {
            *est.entry(g.value(i).as_i64().unwrap()).or_insert(0.0) += sample.weights[i];
        }
        for (_, e) in est {
            assert!((e - 1_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn small_groups_are_not_scaled() {
        let b = batch(30, 10); // 3 rows per group, below the cap
        let mut s = StratifiedSampler::new(vec!["g".into()], 10, 1);
        let sample = s.sample_partitions(&[b]).unwrap();
        assert_eq!(sample.len(), 30);
        assert!(sample.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn missing_column_errors() {
        let b = batch(10, 2);
        let mut s = StratifiedSampler::new(vec!["missing".into()], 5, 1);
        assert!(s.sample_partitions(&[b]).is_err());
    }

    #[test]
    fn reservoir_matches_blocking_sampler_semantics() {
        // Absorbing a stream chunk-by-chunk must produce the same *shape* of
        // sample (cap per group, exact weight sums) as the blocking sampler
        // over the concatenation.
        let mut res = StratifiedReservoir::new(vec!["g".into()], 20, 7);
        for _ in 0..4 {
            res.absorb(&batch(1_000, 5)).unwrap();
        }
        assert_eq!(res.rows_seen(), 4_000);
        assert_eq!(res.num_groups(), 5);
        let sample = res.to_sample().expect("absorbed batches");
        assert_eq!(sample.len(), 5 * 20);
        let g = sample.rows.column_by_name("g").unwrap();
        let mut est: HashMap<i64, f64> = HashMap::new();
        for i in 0..g.len() {
            *est.entry(g.value(i).as_i64().unwrap()).or_insert(0.0) += sample.weights[i];
        }
        for (_, e) in est {
            assert!((e - 800.0).abs() < 1e-6, "weight sum {e}");
        }
    }

    #[test]
    fn reservoir_keeps_small_groups_whole_and_covers_new_groups() {
        let mut res = StratifiedReservoir::new(vec!["g".into()], 10, 3);
        res.absorb(&batch(30, 10)).unwrap(); // 3 rows per group
        let s = res.to_sample().unwrap();
        assert_eq!(s.len(), 30);
        assert!(s.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
        // A group appearing only in a later batch is covered too.
        let late = BatchBuilder::new()
            .column("g", vec![999i64; 4])
            .column("v", vec![1.0f64; 4])
            .build()
            .unwrap();
        res.absorb(&late).unwrap();
        assert_eq!(res.num_groups(), 11);
        let s = res.to_sample().unwrap();
        assert_eq!(s.len(), 34);
        assert_eq!(s.source_rows, 34);
    }

    #[test]
    fn reservoir_rejects_schema_drift_and_needs_input() {
        let mut res = StratifiedReservoir::new(vec!["g".into()], 5, 1);
        assert!(res.to_sample().is_none());
        res.absorb(&batch(10, 2)).unwrap();
        let other = BatchBuilder::new()
            .column("x", vec![1.0f64])
            .build()
            .unwrap();
        assert!(res.absorb(&other).is_err());
        assert!(res.absorb(&batch(0, 2)).is_ok(), "empty batch is a no-op");
    }
}
