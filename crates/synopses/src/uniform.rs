//! Uniform sampler `Γ^U_p` (Section II of the paper).
//!
//! Every row passes independently with probability `p`; retained rows carry
//! weight `1/p`. The sampler is pipelineable (single pass) and partitionable
//! (per-partition samples merge by concatenation).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use taster_storage::batch::RecordBatch;

use crate::sample::WeightedSample;

/// A Bernoulli (uniform, without replacement) sampler.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    probability: f64,
    rng: SmallRng,
}

impl UniformSampler {
    /// Create a sampler with pass-through probability `p` (clamped to
    /// `(0, 1]`) and a deterministic seed.
    pub fn new(probability: f64, seed: u64) -> Self {
        Self {
            probability: probability.clamp(1e-9, 1.0),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured pass-through probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Sample one batch, returning retained row indices and their weights.
    pub fn sample_indices(&mut self, num_rows: usize) -> (Vec<usize>, Vec<f64>) {
        let mut idx = Vec::with_capacity((num_rows as f64 * self.probability) as usize + 1);
        for i in 0..num_rows {
            if self.rng.random::<f64>() < self.probability {
                idx.push(i);
            }
        }
        let w = 1.0 / self.probability;
        let weights = vec![w; idx.len()];
        (idx, weights)
    }

    /// Sample a whole batch into a [`WeightedSample`].
    pub fn sample_batch(&mut self, batch: &RecordBatch) -> WeightedSample {
        let (idx, weights) = self.sample_indices(batch.num_rows());
        WeightedSample {
            rows: batch.take(&idx),
            weights,
            stratification: Vec::new(),
            probability: self.probability,
            source_rows: batch.num_rows(),
        }
    }

    /// Sample a sequence of partitions, merging the per-partition samples
    /// (this is exactly how the operator is distributed across workers).
    /// Accepts owned or `Arc`-shared partitions (table snapshots hand out the
    /// latter).
    ///
    /// Returns `None` for zero partitions — there is no schema to build an
    /// empty sample from, and a `Schema::empty()` placeholder would poison
    /// downstream merges (see [`crate::distinct::DistinctSampler::sample_partitions`]).
    pub fn sample_partitions<B: std::borrow::Borrow<RecordBatch>>(
        &mut self,
        partitions: &[B],
    ) -> Option<WeightedSample> {
        let mut out: Option<WeightedSample> = None;
        for p in partitions {
            let s = self.sample_batch(p.borrow());
            match &mut out {
                None => out = Some(s),
                Some(acc) => acc.merge(&s).expect("partitions share a schema"),
            }
        }
        out
    }

    /// Absorb a batch of **appended** rows into an existing sample
    /// (incremental maintenance: no rebuild over the old rows).
    ///
    /// Bernoulli sampling is memoryless — each row passes independently with
    /// probability `p` — so sampling only the delta and merging is
    /// statistically identical to resampling the concatenated stream: the
    /// maintained sample stays an unbiased Horvitz–Thompson sample of the
    /// grown relation.
    ///
    /// ```
    /// use taster_storage::batch::BatchBuilder;
    /// use taster_synopses::UniformSampler;
    ///
    /// let old = BatchBuilder::new()
    ///     .column("v", (0..1000i64).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    /// let mut sampler = UniformSampler::new(0.5, 7);
    /// let mut sample = sampler.sample_batch(&old);
    ///
    /// // The table grows; only the new rows are sampled.
    /// let delta = BatchBuilder::new()
    ///     .column("v", (1000..1500i64).collect::<Vec<_>>())
    ///     .build()
    ///     .unwrap();
    /// sampler.update(&mut sample, &delta).unwrap();
    ///
    /// assert_eq!(sample.source_rows, 1500);
    /// // The weight sum still estimates the (grown) source row count.
    /// let est = sample.estimated_source_rows();
    /// assert!((est - 1500.0).abs() / 1500.0 < 0.1, "estimate {est}");
    /// ```
    pub fn update(
        &mut self,
        sample: &mut WeightedSample,
        batch: &RecordBatch,
    ) -> Result<(), taster_storage::StorageError> {
        let delta = self.sample_batch(batch);
        sample.merge(&delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::partition::split_batch;

    fn batch(n: usize) -> RecordBatch {
        BatchBuilder::new()
            .column("id", (0..n as i64).collect::<Vec<_>>())
            .column("v", (0..n).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn sample_size_tracks_probability() {
        let b = batch(20_000);
        let mut s = UniformSampler::new(0.1, 42);
        let sample = s.sample_batch(&b);
        let n = sample.len() as f64;
        assert!((1_500.0..2_500.0).contains(&n), "sample size {n}");
        assert!(sample.weights.iter().all(|&w| (w - 10.0).abs() < 1e-9));
    }

    #[test]
    fn weight_sum_estimates_source_rows() {
        let b = batch(50_000);
        let mut s = UniformSampler::new(0.05, 7);
        let sample = s.sample_batch(&b);
        let est = sample.estimated_source_rows();
        assert!((est - 50_000.0).abs() / 50_000.0 < 0.1, "estimate {est}");
    }

    #[test]
    fn partitioned_sampling_covers_all_partitions() {
        let b = batch(10_000);
        let parts = split_batch(&b, 8);
        let mut s = UniformSampler::new(0.2, 3);
        let sample = s.sample_partitions(&parts).expect("non-empty input");
        assert_eq!(sample.source_rows, 10_000);
        assert!(sample.len() > 1_000);
    }

    #[test]
    fn zero_partitions_yield_explicit_none() {
        let mut s = UniformSampler::new(0.2, 3);
        assert!(s.sample_partitions::<RecordBatch>(&[]).is_none());
    }

    #[test]
    fn p_one_keeps_everything() {
        let b = batch(100);
        let mut s = UniformSampler::new(1.0, 0);
        let sample = s.sample_batch(&b);
        assert_eq!(sample.len(), 100);
        assert!(sample.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deterministic_under_seed() {
        let b = batch(1_000);
        let a = UniformSampler::new(0.3, 99).sample_batch(&b);
        let c = UniformSampler::new(0.3, 99).sample_batch(&b);
        assert_eq!(a.len(), c.len());
        assert_eq!(a.rows, c.rows);
    }
}
