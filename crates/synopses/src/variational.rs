//! VerdictDB-style scramble + variational subsampling.
//!
//! The user-hints experiment (Fig. 7) pre-builds samples offline with the
//! "state-of-the-art variational subsampling approach of VerdictDB \[34\]".
//! The offline phase (a) creates a shuffled clone of the table (the
//! *scramble*), and (b) extracts a uniform sample from it that is divided
//! into `n_s` disjoint subsamples. At query time the aggregate is computed on
//! every subsample; the spread of the per-subsample estimates yields the
//! error estimate without the quadratic cost of full bootstrap resampling.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use taster_storage::batch::RecordBatch;
use taster_storage::StorageError;

use crate::sample::WeightedSample;

/// A variational sample: a uniform sample of a scrambled table, partitioned
/// into subsamples for cheap error estimation.
#[derive(Debug, Clone)]
pub struct VariationalSample {
    /// The underlying uniform sample (weights = 1/p).
    pub sample: WeightedSample,
    /// Subsample id per retained row (0..num_subsamples).
    pub subsample_ids: Vec<u32>,
    /// Number of subsamples.
    pub num_subsamples: u32,
    /// Time the offline phase "spent" scrambling, in scanned rows, so the
    /// harness can charge it to the offline bar of Fig. 7.
    pub scramble_rows: usize,
}

impl VariationalSample {
    /// Build a variational sample offline.
    ///
    /// `fraction` is the sampling fraction; `num_subsamples` defaults to
    /// `n_s ≈ sample_size^0.5` when 0 is passed (VerdictDB recommends
    /// `n^0.5`-sized subsamples).
    pub fn build<B: std::borrow::Borrow<RecordBatch>>(
        partitions: &[B],
        fraction: f64,
        num_subsamples: u32,
        seed: u64,
    ) -> Result<Self, StorageError> {
        let fraction = fraction.clamp(1e-6, 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);

        // Offline step (a): scramble — materialize a shuffled clone. We track
        // its cost (every row is read and written once) for the harness.
        let refs: Vec<&RecordBatch> = partitions.iter().map(|p| p.borrow()).collect();
        let whole = RecordBatch::concat_refs(&refs)?;
        let mut order: Vec<usize> = (0..whole.num_rows()).collect();
        order.shuffle(&mut rng);
        let scrambled = whole.take(&order);
        let scramble_rows = whole.num_rows();

        // Offline step (b): uniform sample of the scramble.
        let mut idx = Vec::new();
        for i in 0..scrambled.num_rows() {
            if rng.random::<f64>() < fraction {
                idx.push(i);
            }
        }
        let weights = vec![1.0 / fraction; idx.len()];
        let rows = scrambled.take(&idx);

        let n_s = if num_subsamples == 0 {
            (idx.len() as f64).sqrt().ceil().max(2.0) as u32
        } else {
            num_subsamples.max(2)
        };
        // Because the scramble is already random, assigning subsamples
        // round-robin keeps them disjoint and equally sized.
        let subsample_ids: Vec<u32> = (0..rows.num_rows()).map(|i| (i as u32) % n_s).collect();

        Ok(Self {
            sample: WeightedSample {
                rows,
                weights,
                stratification: Vec::new(),
                probability: fraction,
                source_rows: scramble_rows,
            },
            subsample_ids,
            num_subsamples: n_s,
            scramble_rows,
        })
    }

    /// Estimate a SUM over a numeric column with a variational error
    /// estimate: returns `(estimate, standard_error)`.
    pub fn estimate_sum(&self, column: &str) -> Result<(f64, f64), StorageError> {
        let col = self.sample.rows.column_by_name(column)?;
        let mut per_sub = vec![0.0f64; self.num_subsamples as usize];
        let mut per_sub_rows = vec![0usize; self.num_subsamples as usize];
        let mut total = 0.0;
        for i in 0..col.len() {
            let v = col.value_f64(i).unwrap_or(0.0) * self.sample.weights[i];
            total += v;
            let sid = self.subsample_ids[i] as usize;
            // Each subsample sees 1/n_s of the sample, so scale up by n_s.
            per_sub[sid] += v * self.num_subsamples as f64;
            per_sub_rows[sid] += 1;
        }
        let k = per_sub
            .iter()
            .zip(&per_sub_rows)
            .filter(|(_, &n)| n > 0)
            .count()
            .max(1);
        let mean: f64 = per_sub.iter().sum::<f64>() / k as f64;
        let var: f64 = per_sub
            .iter()
            .zip(&per_sub_rows)
            .filter(|(_, &n)| n > 0)
            .map(|(x, _)| (x - mean) * (x - mean))
            .sum::<f64>()
            / k as f64;
        // Variational subsampling: the variance of the full-sample estimator
        // is approximately the subsample variance divided by n_s.
        let std_err = (var / self.num_subsamples as f64).sqrt();
        Ok((total, std_err))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sample.size_bytes() + self.subsample_ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn batch(n: usize) -> RecordBatch {
        BatchBuilder::new()
            .column("v", (0..n).map(|i| (i % 100) as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn sum_estimate_is_close_and_error_brackets_truth() {
        let b = batch(100_000);
        let truth: f64 = (0..100_000).map(|i| (i % 100) as f64).sum();
        let vs = VariationalSample::build(&[b], 0.02, 0, 42).unwrap();
        let (est, se) = vs.estimate_sum("v").unwrap();
        assert!((est - truth).abs() / truth < 0.1, "estimate {est} vs {truth}");
        assert!(se > 0.0);
        assert!((est - truth).abs() < 6.0 * se, "truth outside 6 sigma");
    }

    #[test]
    fn subsamples_partition_the_sample() {
        let b = batch(10_000);
        let vs = VariationalSample::build(&[b], 0.1, 8, 1).unwrap();
        assert_eq!(vs.num_subsamples, 8);
        assert_eq!(vs.subsample_ids.len(), vs.sample.len());
        assert!(vs.subsample_ids.iter().all(|&s| s < 8));
        assert_eq!(vs.scramble_rows, 10_000);
    }

    #[test]
    fn default_subsample_count_scales_with_sample_size() {
        let b = batch(40_000);
        let vs = VariationalSample::build(&[b], 0.1, 0, 9).unwrap();
        // ~4000 sampled rows => ~sqrt(4000) ≈ 64 subsamples.
        assert!((40..=90).contains(&vs.num_subsamples), "{}", vs.num_subsamples);
    }

    #[test]
    fn smaller_samples_have_larger_error() {
        let b = batch(100_000);
        let small = VariationalSample::build(std::slice::from_ref(&b), 0.005, 16, 3).unwrap();
        let large = VariationalSample::build(&[b], 0.2, 16, 3).unwrap();
        let (_, se_small) = small.estimate_sum("v").unwrap();
        let (_, se_large) = large.estimate_sum("v").unwrap();
        assert!(se_small > se_large);
    }
}
