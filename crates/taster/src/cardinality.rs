//! Synopsis-fed cardinality estimation for the cost-based planner.
//!
//! The engine's [`CostEstimator`](taster_engine::CostEstimator) prices
//! candidate plans — including index access paths — with per-predicate
//! selectivities. Textbook constants (`0.1` for equality, `1/3` otherwise)
//! are enough to *rank* plans of wildly different shapes, but choosing
//! between an index probe and a zone-pruned scan hinges on *how many rows*
//! a predicate actually matches. This module answers that question from
//! synopses, in the same spirit as every other summary Taster maintains:
//!
//! * a **CountMin sketch** per consulted column gives point-frequency
//!   estimates (`column = value` selectivity) that track skew — a heavy
//!   hitter and a rare value get very different answers,
//! * the column's observed **min/max** give interpolated range fractions
//!   for numeric comparisons (a one-bucket equi-width histogram),
//! * the table's **distinct counts** (already computed by
//!   [`taster_storage::stats::TableStats`]) provide the `1/ndv` equality
//!   fanout fallback when no sketch has been built yet.
//!
//! Summaries are built lazily on first consultation of a (table, column)
//! pair and cached; a summary whose base table has grown past the
//! staleness bound (the same `max_staleness` knob that governs synopsis
//! freshness) is rebuilt on next use. All answers are *fractions* of the
//! table, so mild growth between rebuilds only dilutes, never corrupts,
//! the estimate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use taster_engine::cost::CardinalityProvider;
use taster_engine::BinaryOp;
use taster_storage::{Catalog, ColumnData, Value};
use taster_synopses::countmin::CountMinSketch;

/// Frequency summary of one column, built from one table snapshot.
#[derive(Debug)]
struct ColumnSummary {
    /// Rows the summary was built over (the denominator of every fraction).
    rows: usize,
    /// Point-frequency sketch over the column's values.
    countmin: CountMinSketch,
    /// Observed minimum (by [`Value::total_cmp`]), `None` for empty columns.
    min: Option<Value>,
    /// Observed maximum.
    max: Option<Value>,
}

impl ColumnSummary {
    fn build(catalog: &Catalog, table: &str, column: &str) -> Option<Self> {
        let t = catalog.table(table).ok()?;
        let snapshot = t.snapshot();
        let mut countmin = CountMinSketch::with_error(0.001, 0.01);
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut rows = 0usize;
        for part in snapshot.partitions() {
            let col = part.column_by_name(column).ok()?;
            if let ColumnData::Dict { codes, dict } = col {
                // Encoded partitions fold one sketch update per *distinct*
                // value instead of one per row: histogram the codes, then
                // add each dictionary string once with its count. The dict
                // is sorted, so the smallest/largest used codes are the
                // partition's min/max.
                let mut hist = vec![0u64; dict.len()];
                for &c in codes {
                    hist[c as usize] += 1;
                }
                for (code, &n) in hist.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let v = Value::Str(dict.get(code as u32).to_string());
                    countmin.add(&v, n as f64);
                    if min
                        .as_ref()
                        .is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Less)
                    {
                        min = Some(v.clone());
                    }
                    if max
                        .as_ref()
                        .is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Greater)
                    {
                        max = Some(v);
                    }
                }
                rows += codes.len();
                continue;
            }
            for i in 0..col.len() {
                let v = col.value(i);
                if v.is_null() {
                    continue;
                }
                countmin.insert(&v);
                if min
                    .as_ref()
                    .is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Less)
                {
                    min = Some(v.clone());
                }
                if max
                    .as_ref()
                    .is_none_or(|m| v.total_cmp(m) == std::cmp::Ordering::Greater)
                {
                    max = Some(v);
                }
                rows += 1;
            }
        }
        Some(Self {
            rows,
            countmin,
            min,
            max,
        })
    }

    /// Fraction of rows equal to `value` (CountMin overestimates slightly,
    /// which biases the planner *away* from index paths — the safe side).
    fn point_fraction(&self, value: &Value) -> Option<f64> {
        if self.rows == 0 {
            return None;
        }
        Some((self.countmin.estimate(value) / self.rows as f64).clamp(0.0, 1.0))
    }

    /// Interpolated fraction of rows satisfying `column <op> value`, treating
    /// the observed [min, max] as one equi-width histogram bucket. Only
    /// numeric columns interpolate; everything else abstains.
    fn range_fraction(&self, op: BinaryOp, value: &Value) -> Option<f64> {
        let lo = self.min.as_ref()?.as_f64()?;
        let hi = self.max.as_ref()?.as_f64()?;
        let v = value.as_f64()?;
        let below = if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else if v > lo {
            1.0
        } else if v < lo {
            0.0
        } else {
            // Single-valued column compared against exactly that value: the
            // strict comparisons match nothing, the inclusive ones everything.
            return Some(match op {
                BinaryOp::Lt | BinaryOp::Gt => 0.0,
                BinaryOp::LtEq | BinaryOp::GtEq => 1.0,
                _ => return None,
            });
        };
        Some(match op {
            BinaryOp::Lt | BinaryOp::LtEq => below,
            BinaryOp::Gt | BinaryOp::GtEq => 1.0 - below,
            _ => return None,
        })
    }
}

/// Process-wide cache of column summaries, owned by the planner and shared
/// across queries. Keyed by `(table, column)`; entries carry the row count
/// they were built at so staleness can be judged per lookup.
#[derive(Debug, Default)]
pub struct CardinalityCache {
    columns: RwLock<HashMap<(String, String), Arc<ColumnSummary>>>,
}

impl CardinalityCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached column summaries (observability for tests).
    pub fn len(&self) -> usize {
        self.columns.read().len()
    }

    /// `true` when no summary has been built yet.
    pub fn is_empty(&self) -> bool {
        self.columns.read().is_empty()
    }
}

/// A [`CardinalityProvider`] view over one catalog, backed by a shared
/// [`CardinalityCache`]. Cheap to construct per planning round.
#[derive(Debug)]
pub struct SynopsisCardinality<'c> {
    catalog: &'c Catalog,
    cache: &'c CardinalityCache,
    max_staleness: f64,
}

impl<'c> SynopsisCardinality<'c> {
    /// Create a provider over `catalog`, caching summaries in `cache` and
    /// rebuilding any summary whose table has grown by more than
    /// `max_staleness` since it was built.
    pub fn new(catalog: &'c Catalog, cache: &'c CardinalityCache, max_staleness: f64) -> Self {
        Self {
            catalog,
            cache,
            max_staleness: max_staleness.max(0.0),
        }
    }

    fn summary(&self, table: &str, column: &str) -> Option<Arc<ColumnSummary>> {
        let key = (table.to_string(), column.to_string());
        let rows_now = self.catalog.table(table).ok()?.num_rows();
        if let Some(existing) = self.cache.columns.read().get(&key) {
            let fresh = rows_now as f64 <= existing.rows as f64 * (1.0 + self.max_staleness)
                || existing.rows == rows_now;
            if fresh {
                return Some(existing.clone());
            }
        }
        let built = Arc::new(ColumnSummary::build(self.catalog, table, column)?);
        self.cache.columns.write().insert(key, built.clone());
        Some(built)
    }
}

impl CardinalityProvider for SynopsisCardinality<'_> {
    fn point_selectivity(&self, table: &str, column: &str, value: &Value) -> Option<f64> {
        self.summary(table, column)?.point_fraction(value)
    }

    fn range_selectivity(
        &self,
        table: &str,
        column: &str,
        op: BinaryOp,
        value: &Value,
    ) -> Option<f64> {
        self.summary(table, column)?.range_fraction(op, value)
    }

    fn distinct_count(&self, table: &str, column: &str) -> Option<u64> {
        let t = self.catalog.table(table).ok()?;
        let d = t.stats().distinct_count(column);
        (d > 0).then_some(d as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        // Heavily skewed column: value 0 fills 90% of rows, 1..=100 share
        // the rest.
        let n = 10_000usize;
        let skew: Vec<i64> = (0..n as i64)
            .map(|i| if i % 10 != 0 { 0 } else { 1 + (i / 10) % 100 })
            .collect();
        let batch = BatchBuilder::new()
            .column("s", skew)
            .column("u", (0..n as i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("t", batch, 4).unwrap());
        cat
    }

    #[test]
    fn dict_summaries_match_raw_strings() {
        // Same string column twice: one table sealed into dict-encoded
        // partitions, one left raw (seal threshold above the row count).
        // Estimates must come out identical either way.
        let cats = ["ash", "beech", "cedar", "fig"];
        let n = 4_000usize;
        let col: Vec<String> = (0..n).map(|i| cats[i * i % 4].to_string()).collect();
        let cat = Catalog::new();
        let batch = BatchBuilder::new().column("c", col).build().unwrap();
        cat.register(Table::from_batch("enc", batch.clone(), 4).unwrap());
        cat.register(Table::from_batch("raw", batch, n + 1).unwrap());
        let (dicts, plain) = cat.table("enc").unwrap().snapshot().encoding_counts();
        assert!(dicts > 0 && plain == 0, "enc table should be fully encoded");

        let cache = CardinalityCache::new();
        let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
        for lit in ["ash", "beech", "cedar", "fig", "absent"] {
            let v = Value::Str(lit.to_string());
            let e = cards.point_selectivity("enc", "c", &v).unwrap();
            let r = cards.point_selectivity("raw", "c", &v).unwrap();
            assert_eq!(e, r, "point estimate diverged for {lit:?}");
        }
    }

    #[test]
    fn point_estimates_track_skew() {
        let cat = catalog();
        let cache = CardinalityCache::new();
        let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
        let heavy = cards.point_selectivity("t", "s", &Value::Int(0)).unwrap();
        let rare = cards.point_selectivity("t", "s", &Value::Int(5)).unwrap();
        assert!(heavy > 0.8, "heavy hitter ≈0.9, got {heavy}");
        assert!(rare < 0.01, "rare value ≈0.001, got {rare}");
        // Summaries are cached — two lookups, one build each.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn range_estimates_interpolate() {
        let cat = catalog();
        let cache = CardinalityCache::new();
        let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
        let frac = cards
            .range_selectivity("t", "u", BinaryOp::Lt, &Value::Int(1000))
            .unwrap();
        assert!((frac - 0.1).abs() < 0.02, "u < 1000 over 0..10000 ≈ 0.1, got {frac}");
        let hi = cards
            .range_selectivity("t", "u", BinaryOp::GtEq, &Value::Int(9000))
            .unwrap();
        assert!((hi - 0.1).abs() < 0.02, "u >= 9000 ≈ 0.1, got {hi}");
    }

    #[test]
    fn stale_summaries_rebuild_after_growth() {
        let cat = catalog();
        let cache = CardinalityCache::new();
        let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
        let before = cards.point_selectivity("t", "u", &Value::Int(1)).unwrap();
        assert!(before > 0.0);

        // Grow the table ~50% with rows all equal to 1: well past the 20%
        // staleness bound, so the next lookup rebuilds and sees the new mass.
        let t = cat.table("t").unwrap();
        let extra = BatchBuilder::new()
            .column("s", vec![0i64; 5000])
            .column("u", vec![1i64; 5000])
            .build()
            .unwrap();
        t.append(&extra).unwrap();
        let after = cards.point_selectivity("t", "u", &Value::Int(1)).unwrap();
        assert!(after > 0.2, "rebuilt estimate sees the appended mass, got {after}");
    }

    #[test]
    fn distinct_counts_come_from_table_stats() {
        let cat = catalog();
        let cache = CardinalityCache::new();
        let cards = SynopsisCardinality::new(&cat, &cache, 0.2);
        let d = cards.distinct_count("t", "s").unwrap();
        assert!((90..=120).contains(&d), "s has ~101 distinct values, got {d}");
        assert!(cards.distinct_count("t", "missing").is_none());
    }
}
