//! Coalescing of concurrent synopsis builds.
//!
//! Two sessions racing the same query template plan the same
//! [`SampleRequirement`](crate::matching::SampleRequirement): the planner's
//! fingerprint dedup ([`MetadataStore::register`](crate::metadata::MetadataStore::register))
//! hands both the **same synopsis id**, so both tuners may choose the same
//! create-plan and the engine would build the identical synopsis twice —
//! twice the base-table scan, twice the sampler work, for one warehouse
//! entry.
//!
//! [`Coalescer`] turns that race into one build:
//!
//! * the first session to start building an id becomes its **builder** and
//!   holds a [`BuildGuard`] for the duration (build + byproduct
//!   materialization into the store);
//! * a session that finds a build for its id already in flight blocks until
//!   the builder's guard drops, then reads the freshly materialized synopsis
//!   through a plan-time lease and executes the candidate's `future_plan`
//!   (the plan the planner already costed for "this synopsis exists") —
//!   the PR 4 lease/graveyard machinery makes that read safe even if a
//!   concurrent tuner evicts the id in between;
//! * if the builder failed, or the id was evicted *and reaped* before the
//!   loser could lease it, the loser simply builds it itself — coalescing is
//!   an optimization, never a correctness dependency.
//!
//! The coalescer never blocks the builder and costs one map lookup per
//! create-plan; serial workloads never contend.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::synopsis::SynopsisId;

/// One in-flight build: `finished` flips when the builder's guard drops.
#[derive(Default)]
struct Cell {
    finished: Mutex<bool>,
    done: Condvar,
}

/// Poison-transparent lock (a panicking builder must not cascade into every
/// waiting session; the guard still flips `finished` during unwind).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Outcome of [`Coalescer::begin`].
#[derive(Debug)]
pub enum BuildTicket {
    /// No build of this id was in flight: the caller is now the builder and
    /// must hold the guard until the byproduct is in the store.
    Build(BuildGuard),
    /// Another session was building this id; `begin` blocked until that build
    /// finished. The caller should try to lease the materialized synopsis
    /// (and fall back to building on a miss).
    Coalesced,
}

/// Held by the builder for the duration of a build; dropping it (on success,
/// error, or unwind) wakes every coalesced waiter and retires the id.
pub struct BuildGuard {
    coalescer: Arc<Inner>,
    id: SynopsisId,
}

/// Registry of in-flight synopsis builds, keyed by synopsis id. One inner is
/// shared by every session of an engine through [`Coalescer`] handles.
#[derive(Default)]
struct Inner {
    inflight: Mutex<HashMap<SynopsisId, Arc<Cell>>>,
}

impl Drop for BuildGuard {
    fn drop(&mut self) {
        let cell = lock(&self.coalescer.inflight).remove(&self.id);
        if let Some(cell) = cell {
            *lock(&cell.finished) = true;
            cell.done.notify_all();
        }
    }
}

impl std::fmt::Debug for BuildGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildGuard").field("id", &self.id).finish()
    }
}

/// The shareable coalescer handle (cheap clone, `Arc` inner).
#[derive(Default, Clone)]
pub struct Coalescer {
    inner: Arc<Inner>,
}

impl Coalescer {
    /// A fresh coalescer with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce intent to build synopsis `id`.
    ///
    /// Returns [`BuildTicket::Build`] (with the guard) when no build of `id`
    /// is in flight, or blocks until the in-flight build completes and
    /// returns [`BuildTicket::Coalesced`].
    pub fn begin(&self, id: SynopsisId) -> BuildTicket {
        let cell = {
            let mut inflight = lock(&self.inner.inflight);
            match inflight.entry(id) {
                Entry::Vacant(v) => {
                    v.insert(Arc::new(Cell::default()));
                    return BuildTicket::Build(BuildGuard {
                        coalescer: Arc::clone(&self.inner),
                        id,
                    });
                }
                Entry::Occupied(e) => Arc::clone(e.get()),
            }
        };
        let mut finished = lock(&cell.finished);
        while !*finished {
            finished = cell.done.wait(finished).unwrap_or_else(|e| e.into_inner());
        }
        BuildTicket::Coalesced
    }

    /// Number of builds currently in flight (tests and introspection).
    pub fn inflight_len(&self) -> usize {
        lock(&self.inner.inflight).len()
    }
}

impl std::fmt::Debug for Coalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coalescer")
            .field("inflight", &self.inflight_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn uncontended_begin_is_a_build_ticket() {
        let c = Coalescer::new();
        let ticket = c.begin(7);
        assert!(matches!(ticket, BuildTicket::Build(_)));
        assert_eq!(c.inflight_len(), 1);
        drop(ticket);
        assert_eq!(c.inflight_len(), 0);
        // After the guard drops the id is buildable again.
        assert!(matches!(c.begin(7), BuildTicket::Build(_)));
    }

    #[test]
    fn distinct_ids_never_coalesce() {
        let c = Coalescer::new();
        let a = c.begin(1);
        let b = c.begin(2);
        assert!(matches!(a, BuildTicket::Build(_)));
        assert!(matches!(b, BuildTicket::Build(_)));
    }

    #[test]
    fn racing_builders_coalesce_to_one_build() {
        let c = Coalescer::new();
        let builds = AtomicU64::new(0);
        let coalesced = AtomicU64::new(0);
        let in_build = Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| match c.begin(42) {
                BuildTicket::Build(guard) => {
                    builds.fetch_add(1, Ordering::Relaxed);
                    in_build.wait(); // the loser starts while this build runs
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    drop(guard);
                }
                BuildTicket::Coalesced => {
                    coalesced.fetch_add(1, Ordering::Relaxed);
                    in_build.wait();
                }
            });
            scope.spawn(|| {
                in_build.wait();
                match c.begin(42) {
                    BuildTicket::Build(guard) => {
                        builds.fetch_add(1, Ordering::Relaxed);
                        drop(guard);
                    }
                    BuildTicket::Coalesced => {
                        coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert_eq!(coalesced.load(Ordering::Relaxed), 1, "the loser coalesced");
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn guard_drop_during_unwind_wakes_waiters() {
        let c = Coalescer::new();
        let in_build = Barrier::new(2);
        std::thread::scope(|scope| {
            let h = scope.spawn(|| {
                let _guard = match c.begin(9) {
                    BuildTicket::Build(g) => g,
                    BuildTicket::Coalesced => unreachable!("first begin builds"),
                };
                in_build.wait();
                panic!("builder dies mid-build");
            });
            in_build.wait();
            // Must unblock despite the builder's panic (guard drops during
            // its unwind).
            assert!(matches!(c.begin(9), BuildTicket::Coalesced));
            assert!(h.join().is_err());
        });
        assert_eq!(c.inflight_len(), 0);
    }
}
