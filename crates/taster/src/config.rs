//! Taster configuration.

use serde::{Deserialize, Serialize};

/// Runtime configuration of a [`crate::TasterEngine`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TasterConfig {
    /// Space quota of the persistent synopsis warehouse, in bytes. This is
    /// the `maxSpace` of the tuner's optimization problem and can be changed
    /// at runtime (storage elasticity, Section V).
    pub warehouse_quota_bytes: usize,
    /// Size of the in-memory synopsis buffer, in bytes.
    pub buffer_quota_bytes: usize,
    /// Initial sliding-window length `w` used by the tuner to predict future
    /// queries (the paper starts at 10 and adapts).
    pub initial_window: usize,
    /// Adaptation factor `α` for the window length (`w± = (1 ± α)·w`).
    pub window_alpha: f64,
    /// Whether the window length adapts at all (disabled for the fixed-`w`
    /// configurations of Fig. 8).
    pub adaptive_window: bool,
    /// Default relative-error target when a query carries no ERROR clause.
    pub default_relative_error: f64,
    /// Default confidence level when a query carries no ERROR clause.
    pub default_confidence: f64,
    /// Minimum rows the distinct sampler guarantees per group (δ).
    pub min_rows_per_group: usize,
    /// Probability threshold below which uniform sampling is considered
    /// worthwhile (the paper checks `p ≤ 0.1`).
    pub uniform_probability_threshold: f64,
    /// Maximum tolerated synopsis staleness, as the fraction of the base
    /// table's current rows that arrived *after* the synopsis was built
    /// (`1 − rows_at_build / rows_now`). A synopsis staler than this is not a
    /// match for any query, and the tuner refreshes (or evicts) it — the
    /// online-ingestion half of the paper's "always fresh enough" contract.
    pub max_staleness: f64,
    /// Seed for all randomized components (samplers), kept explicit for
    /// reproducible experiments.
    pub seed: u64,
    /// Dead-row fraction past which a sealed partition qualifies for
    /// compaction (re-materializing its live rows). Drives both the explicit
    /// [`crate::TasterEngine::compact_now`] entry point and the background
    /// compactor.
    pub compact_dead_fraction: f64,
}

impl Default for TasterConfig {
    fn default() -> Self {
        Self {
            warehouse_quota_bytes: 64 << 20,
            buffer_quota_bytes: 16 << 20,
            initial_window: 10,
            window_alpha: 0.25,
            adaptive_window: true,
            default_relative_error: 0.10,
            default_confidence: 0.95,
            min_rows_per_group: 100,
            uniform_probability_threshold: 0.1,
            max_staleness: 0.2,
            seed: 0x7a57e1,
            compact_dead_fraction: 0.3,
        }
    }
}

impl TasterConfig {
    /// A configuration whose warehouse quota is a fraction of the dataset
    /// size (the paper expresses budgets as 20%/50%/100% of the data).
    pub fn with_budget_fraction(dataset_bytes: usize, fraction: f64) -> Self {
        Self {
            warehouse_quota_bytes: (dataset_bytes as f64 * fraction) as usize,
            buffer_quota_bytes: ((dataset_bytes as f64 * fraction) as usize / 4).max(1 << 20),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TasterConfig::default();
        assert!(c.warehouse_quota_bytes > c.buffer_quota_bytes);
        assert_eq!(c.initial_window, 10);
        assert!((c.window_alpha - 0.25).abs() < 1e-9);
        assert!(c.adaptive_window);
        assert!(c.compact_dead_fraction > 0.0 && c.compact_dead_fraction < 1.0);
    }

    #[test]
    fn budget_fraction_scales_quota() {
        let c = TasterConfig::with_budget_fraction(1_000_000, 0.5);
        assert_eq!(c.warehouse_quota_bytes, 500_000);
        let full = TasterConfig::with_budget_fraction(1_000_000, 1.0);
        assert!(full.warehouse_quota_bytes > c.warehouse_quota_bytes);
    }
}
