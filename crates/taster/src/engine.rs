//! The Taster engine façade: parse → plan → tune → execute → materialize.

use std::sync::Arc;
use std::time::Instant;

use taster_engine::physical::execute;
use taster_engine::sql::ErrorSpec;
use taster_engine::{parse_query, EngineError, ExecutionContext, LogicalPlan, QueryResult};
use taster_storage::{Catalog, IoModel};

use crate::config::TasterConfig;
use crate::hints::{build_offline_sample, OfflineStrategy};
use crate::metadata::MetadataStore;
use crate::planner::Planner;
use crate::store::SynopsisStore;
use crate::synopsis::SynopsisId;
use crate::tuner::{ChosenPlan, Tuner};

/// The result of one Taster query, combining the engine result with the
/// planning/tuning information the experiments report.
#[derive(Debug)]
pub struct TasterResult {
    /// The (possibly approximate) query result.
    pub result: QueryResult,
    /// Human-readable description of the chosen plan.
    pub plan_description: String,
    /// Materialized synopses the plan reused.
    pub reused_synopses: Vec<SynopsisId>,
    /// Synopses created as byproducts of this query.
    pub created_synopses: Vec<SynopsisId>,
    /// Time spent in the planner and tuner (wall clock).
    pub planning_ns: u128,
    /// Simulated execution time under the engine's I/O model, in seconds.
    pub simulated_secs: f64,
    /// `true` if the tuner chose an approximate plan.
    pub approximate: bool,
}

/// Summary of an offline (hinted) synopsis build.
#[derive(Debug, Clone, Copy)]
pub struct OfflineReport {
    /// The id the pinned synopsis was registered under.
    pub synopsis_id: SynopsisId,
    /// Base rows read during the build.
    pub rows_scanned: usize,
    /// Rows written while scrambling (variational builds only).
    pub rows_scrambled: usize,
    /// Size of the materialized synopsis in bytes.
    pub bytes: usize,
    /// Simulated offline time in seconds (scan + scramble + materialize).
    pub simulated_secs: f64,
}

/// The self-tuning, elastic, online AQP engine.
pub struct TasterEngine {
    catalog: Arc<Catalog>,
    config: TasterConfig,
    io_model: IoModel,
    metadata: MetadataStore,
    store: Arc<SynopsisStore>,
    planner: Planner,
    tuner: Tuner,
    queries_executed: u64,
}

impl TasterEngine {
    /// Create an engine over a catalog with the given configuration.
    pub fn new(catalog: Arc<Catalog>, config: TasterConfig) -> Self {
        let io_model = IoModel::default();
        Self {
            store: Arc::new(SynopsisStore::new(
                config.buffer_quota_bytes,
                config.warehouse_quota_bytes,
            )),
            planner: Planner::new(config, io_model),
            tuner: Tuner::new(&config),
            metadata: MetadataStore::new(),
            catalog,
            config,
            io_model,
            queries_executed: 0,
        }
    }

    /// Replace the I/O cost model (affects both planning and the simulated
    /// times reported in results).
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self.planner = Planner::new(self.config, io_model);
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &TasterConfig {
        &self.config
    }

    /// The metadata store (read access for experiments and tests).
    pub fn metadata(&self) -> &MetadataStore {
        &self.metadata
    }

    /// The synopsis store (read access for experiments and tests).
    pub fn store(&self) -> &SynopsisStore {
        &self.store
    }

    /// Current tuner window length.
    pub fn window(&self) -> usize {
        self.tuner.window()
    }

    /// History of tuner window lengths (for the Fig. 8 experiment).
    pub fn window_history(&self) -> &[usize] {
        self.tuner.window_history()
    }

    /// Number of queries executed so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Change the synopsis warehouse quota at runtime (storage elasticity).
    /// The tuner immediately re-evaluates the stored synopses and evicts
    /// those that no longer fit the new budget.
    pub fn set_storage_budget(&mut self, bytes: usize) {
        self.store.set_warehouse_quota(bytes);
        let evict = self.tuner.reevaluate(&self.metadata, &self.store);
        for id in evict {
            if self.store.warehouse_over_quota() || self.store.buffer_over_quota() {
                self.store.evict(id);
            }
        }
        // If still over quota (e.g. quota shrank drastically), evict in
        // ascending usefulness order until it fits.
        let mut ids = self.store.materialized_ids();
        ids.reverse();
        while self.store.warehouse_over_quota() {
            let Some(id) = ids.pop() else { break };
            self.store.evict(id);
        }
    }

    /// Register a user hint: build a synopsis offline and pin it in the
    /// warehouse. Returns the work performed so callers can account for the
    /// offline phase separately from query execution (Fig. 7).
    pub fn add_offline_hint(
        &mut self,
        table: &str,
        strategy: OfflineStrategy,
        accuracy: Option<ErrorSpec>,
    ) -> Result<OfflineReport, EngineError> {
        let accuracy = accuracy.unwrap_or(ErrorSpec {
            relative_error: self.config.default_relative_error,
            confidence: self.config.default_confidence,
        });
        let build = build_offline_sample(&self.catalog, table, &strategy, accuracy, self.config.seed)?;
        let id = self.metadata.allocate_id();
        let mut descriptor = build.descriptor.clone();
        descriptor.id = id;
        let id = self.metadata.register(descriptor);
        let bytes = build.payload.size_bytes();
        self.metadata.set_actual_size(id, bytes);
        self.store.insert_into_warehouse(id, &build.payload, true);

        let table_bytes = self.catalog.table(table)?.size_bytes();
        let scan_ns = self.io_model.scan_cost(table_bytes);
        let scramble_ns = if build.rows_scrambled > 0 {
            self.io_model.scan_cost(table_bytes) + self.io_model.materialize_cost(table_bytes)
        } else {
            0.0
        };
        let materialize_ns = self.io_model.materialize_cost(bytes);
        Ok(OfflineReport {
            synopsis_id: id,
            rows_scanned: build.rows_scanned,
            rows_scrambled: build.rows_scrambled,
            bytes,
            simulated_secs: (scan_ns + scramble_ns + materialize_ns) / 1e9,
        })
    }

    /// Execute one SQL query through the full Taster pipeline.
    pub fn execute_sql(&mut self, sql: &str) -> Result<TasterResult, EngineError> {
        let query = parse_query(sql)?;
        let planning_start = Instant::now();

        let output = self
            .planner
            .plan(&query, &self.catalog, &mut self.metadata, &self.store)?;
        self.metadata
            .record_query(output.exact_cost_ns, output.alternatives());

        let decision = self.tuner.decide(&output, &self.metadata, &self.store);
        for id in &decision.evict {
            self.store.evict(*id);
        }
        let planning_ns = planning_start.elapsed().as_nanos();

        let (plan, description, reused, created): (&LogicalPlan, String, Vec<SynopsisId>, Vec<SynopsisId>) =
            match decision.chosen {
                ChosenPlan::Exact => (
                    &output.exact_plan,
                    "exact plan".to_string(),
                    vec![],
                    vec![],
                ),
                ChosenPlan::Candidate(i) => {
                    let c = &output.candidates[i];
                    (&c.plan, c.description.clone(), c.uses.clone(), c.creates.clone())
                }
            };

        let ctx = ExecutionContext::new(self.catalog.clone())
            .with_provider(self.store.clone())
            .with_io_model(self.io_model)
            .with_seed(self.config.seed ^ self.queries_executed);
        let result = execute(plan, &ctx)?;

        // Materialize byproducts into the buffer, then let the tuner's `keep`
        // set drive promotion to the warehouse / eviction.
        for (id, payload) in &result.byproducts {
            self.metadata.set_actual_size(*id, payload.size_bytes());
            self.store.insert_into_buffer(*id, payload, false);
        }
        self.manage_buffer(&decision.keep);

        let simulated_secs = result.metrics.simulated_secs(&self.io_model);
        self.queries_executed += 1;
        Ok(TasterResult {
            approximate: result.approximate,
            plan_description: description,
            reused_synopses: reused,
            created_synopses: created,
            planning_ns,
            simulated_secs,
            result,
        })
    }

    /// Apply the buffer policy: synopses in the tuner's keep-set are promoted
    /// to the warehouse when they fit; once the buffer exceeds its quota the
    /// remaining (non-pinned) entries are dropped oldest-id-first.
    fn manage_buffer(&self, keep: &[SynopsisId]) {
        for id in self.store.buffer_ids() {
            if keep.contains(&id) {
                let size = self.store.size_of(id).unwrap_or(0);
                if size <= self.store.warehouse_free_bytes() {
                    self.store.promote_to_warehouse(id);
                }
            }
        }
        if self.store.buffer_over_quota() {
            for id in self.store.buffer_ids() {
                if !self.store.buffer_over_quota() {
                    break;
                }
                self.store.evict(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let cat = Catalog::new();
        let orders = BatchBuilder::new()
            .column("o_id", (0..rows as i64).collect::<Vec<_>>())
            .column("o_cust", (0..rows as i64).map(|i| i % 100).collect::<Vec<_>>())
            .column("o_flag", (0..rows as i64).map(|i| i % 5).collect::<Vec<_>>())
            .column(
                "o_price",
                (0..rows).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 8).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..100i64).collect::<Vec<_>>())
            .column("c_region", (0..100i64).map(|i| i % 4).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customer", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn engine(rows: usize) -> TasterEngine {
        let cat = catalog(rows);
        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
        TasterEngine::new(cat, config)
    }

    const Q: &str =
        "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";

    #[test]
    fn first_query_builds_then_second_reuses() {
        let mut eng = engine(50_000);
        let first = eng.execute_sql(Q).unwrap();
        assert!(first.approximate);
        assert!(!first.created_synopses.is_empty());
        assert!(first.result.metrics.base_rows_scanned >= 50_000);

        let second = eng.execute_sql(Q).unwrap();
        assert!(
            !second.reused_synopses.is_empty(),
            "second identical query must reuse the materialized synopsis: {}",
            second.plan_description
        );
        assert_eq!(
            second.result.metrics.base_rows_scanned, 0,
            "reuse must avoid scanning the base table"
        );
        assert!(second.simulated_secs < first.simulated_secs);
    }

    #[test]
    fn approximate_results_are_close_to_exact() {
        let mut eng = engine(50_000);
        let _ = eng.execute_sql(Q).unwrap();
        let approx = eng.execute_sql(Q).unwrap();

        // Exact reference computed directly through the engine.
        let exact_query = taster_engine::parse_query(Q).unwrap();
        let exact_plan = exact_query.to_exact_plan(&eng.catalog).unwrap();
        let ctx = ExecutionContext::new(eng.catalog.clone());
        let exact = execute(&exact_plan, &ctx).unwrap();

        let (err, missed) = approx.result.error_vs(&exact);
        assert_eq!(missed, 0, "no groups may be missed");
        assert!(err < 0.15, "relative error too large: {err}");
    }

    #[test]
    fn storage_elasticity_evicts_when_quota_shrinks() {
        let mut eng = engine(30_000);
        let _ = eng.execute_sql(Q).unwrap();
        let _ = eng.execute_sql("SELECT o_cust, AVG(o_price) FROM orders GROUP BY o_cust").unwrap();
        assert!(eng.store().usage().warehouse_bytes + eng.store().usage().buffer_bytes > 0);
        eng.set_storage_budget(0);
        assert_eq!(eng.store().usage().warehouse_bytes, 0);
    }

    #[test]
    fn hints_pin_offline_synopses() {
        use taster_engine::context::SynopsisProvider as _;
        let mut eng = engine(30_000);
        let report = eng
            .add_offline_hint(
                "orders",
                OfflineStrategy::Variational { fraction: 0.02 },
                None,
            )
            .unwrap();
        assert!(report.bytes > 0);
        assert!(report.rows_scrambled > 0);
        assert!(report.simulated_secs > 0.0);
        // The pinned synopsis survives a quota collapse.
        eng.set_storage_budget(0);
        assert!(eng.store().sample(report.synopsis_id).is_some());
    }

    #[test]
    fn join_query_runs_end_to_end() {
        let mut eng = engine(20_000);
        let res = eng
            .execute_sql(
                "SELECT c_region, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY c_region",
            )
            .unwrap();
        assert_eq!(res.result.num_groups(), 4);
        let total: f64 = res
            .result
            .groups
            .iter()
            .map(|g| g.aggregates[0].value)
            .sum();
        assert!((total - 20_000.0).abs() / 20_000.0 < 0.1, "{total}");
    }

    #[test]
    fn non_approximable_query_falls_back_to_exact() {
        let mut eng = engine(5_000);
        let res = eng
            .execute_sql("SELECT o_id, o_price FROM orders WHERE o_price > 990")
            .unwrap();
        assert!(!res.approximate);
        assert_eq!(res.plan_description, "exact plan");
    }
}
