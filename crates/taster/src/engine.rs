//! The Taster engine façade: parse → plan → tune → execute → materialize.
//!
//! [`TasterEngine`] is a **concurrent, multi-session service**: every public
//! method takes `&self`, so one engine can be shared (e.g. behind an `Arc` or
//! scoped-thread borrows) by any number of session threads issuing queries at
//! once. Internally the mutable pieces sit behind fine-grained locks —
//! the metadata store behind an `RwLock`, the tuner behind a `Mutex`, the
//! query counter in an atomic, and the synopsis store behind its own
//! per-tier locks — acquired in a fixed order (metadata → tuner → store
//! tiers) so sessions cannot deadlock.
//!
//! Synopsis lifetimes across the loop are protected by **leases**: the
//! planner takes a [`crate::store::SynopsisLease`] on every materialized
//! synopsis it matches, and the engine holds the planner output (and with it
//! the leases) until execution finishes. A tuner eviction — from this query's
//! own decision, a concurrent session, or a storage-elasticity quota change —
//! therefore only *logically* removes a matched synopsis; the payload stays
//! readable until the last in-flight plan using it completes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use taster_engine::context::{mix_seed, SynopsisLocation, SynopsisProvider};
use taster_engine::physical::execute;
use taster_engine::shared_scan::{SharedScanRegistry, SharedScanStats};
use taster_engine::sql::ErrorSpec;
use taster_engine::{
    parse_query, BinaryOp, EngineError, ExecutionContext, Expr, QueryResult, SampleMethod,
    SynopsisPayload,
};
use taster_storage::{
    Catalog, ColumnData, CompactReport, IoModel, RecordBatch, SelectionMask, StdVfs,
    StorageError, Table, TableSnapshot, Value, Vfs,
};
use taster_synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::{UniformSampler, WeightedSample};

use crate::coalesce::{BuildGuard, BuildTicket, Coalescer};
use crate::config::TasterConfig;
use crate::hints::{build_offline_sample, OfflineStrategy};
use crate::metadata::MetadataStore;
use crate::persist::{Durability, PayloadRef, RecoveredOp, SynopsisSnapshot, TunerState};
use crate::planner::Planner;
use crate::store::{SynopsisLease, SynopsisStore};
use crate::synopsis::{SynopsisId, SynopsisKind};
use crate::tuner::{ChosenPlan, Tuner};

/// Per-query provider overlay: the chosen plan's leased synopses resolve
/// from their plan-time snapshots, everything else from the shared store.
/// This pins exactly the payloads the planner matched — a concurrent session
/// evicting or re-materializing the same id mid-query cannot change what
/// this query reads.
struct LeasedProvider {
    leases: Vec<SynopsisLease>,
    store: SynopsisStore,
}

impl SynopsisProvider for LeasedProvider {
    fn sample(&self, id: u64) -> Option<(Arc<WeightedSample>, SynopsisLocation)> {
        self.leases
            .iter()
            .find(|l| l.id() == id)
            .and_then(|l| l.sample())
            .or_else(|| self.store.sample(id))
    }

    fn sketch(&self, id: u64) -> Option<(Arc<SketchJoin>, SynopsisLocation)> {
        self.leases
            .iter()
            .find(|l| l.id() == id)
            .and_then(|l| l.sketch())
            .or_else(|| self.store.sketch(id))
    }
}

/// The result of one Taster query, combining the engine result with the
/// planning/tuning information the experiments report.
#[derive(Debug)]
pub struct TasterResult {
    /// The (possibly approximate) query result.
    pub result: QueryResult,
    /// Human-readable description of the chosen plan.
    pub plan_description: String,
    /// Materialized synopses the plan reused.
    pub reused_synopses: Vec<SynopsisId>,
    /// Synopses created as byproducts of this query.
    pub created_synopses: Vec<SynopsisId>,
    /// Time spent in the planner and tuner (wall clock).
    pub planning_ns: u128,
    /// Simulated execution time under the engine's I/O model, in seconds.
    pub simulated_secs: f64,
    /// `true` if the tuner chose an approximate plan.
    pub approximate: bool,
    /// The planner's plan comparison for this query, populated when explain
    /// output is enabled (`TASTER_EXPLAIN=1` at engine construction,
    /// [`TasterEngine::set_explain`], or
    /// [`TasterEngine::execute_sql_explained`]). Carried per query instead of
    /// printed to a global stream, so concurrent sessions never interleave
    /// explain blocks — each session prints (or ships) its own.
    pub explain: Option<String>,
}

/// Summary of an offline (hinted) synopsis build.
#[derive(Debug, Clone, Copy)]
pub struct OfflineReport {
    /// The id the pinned synopsis was registered under.
    pub synopsis_id: SynopsisId,
    /// Base rows read during the build.
    pub rows_scanned: usize,
    /// Rows written while scrambling (variational builds only).
    pub rows_scrambled: usize,
    /// Size of the materialized synopsis in bytes.
    pub bytes: usize,
    /// Simulated offline time in seconds (scan + scramble + materialize).
    pub simulated_secs: f64,
}

/// The self-tuning, elastic, online AQP engine.
///
/// All methods take `&self`; see the module docs for the locking discipline
/// that makes the engine safe to share across session threads.
pub struct TasterEngine {
    catalog: Arc<Catalog>,
    config: TasterConfig,
    io_model: IoModel,
    metadata: RwLock<MetadataStore>,
    store: SynopsisStore,
    planner: Planner,
    tuner: Mutex<Tuner>,
    /// Queries admitted so far; each admission claims the next slot of the
    /// deterministic per-query seed schedule.
    queries_executed: AtomicU64,
    /// Incremental synopsis refreshes performed (online ingestion).
    refreshes: AtomicU64,
    /// Shared-scan registry: concurrent executions of identical zone-pruned
    /// morsel passes attach to one pass (see `taster_engine::shared_scan`).
    shared_scans: Arc<SharedScanRegistry>,
    /// In-flight build registry: concurrent create-plans for the same
    /// synopsis id coalesce into one build.
    coalescer: Coalescer,
    /// Queries that executed a synopsis-building plan.
    builds: AtomicU64,
    /// Queries that coalesced onto a concurrent session's build instead of
    /// building themselves.
    builds_coalesced: AtomicU64,
    /// When set, every query's [`TasterResult::explain`] carries the plan
    /// comparison. Seeded from `TASTER_EXPLAIN=1` at construction.
    explain_enabled: AtomicBool,
    /// WAL-backed persistence, present when the engine was opened in
    /// persistent mode ([`open_durable`](Self::open_durable) /
    /// [`recover`](Self::recover)); `None` for in-memory engines.
    durability: Option<Arc<Durability>>,
}

/// What [`TasterEngine::recover`] reconstructed from the durability log.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Tables restored into the catalog.
    pub tables: usize,
    /// Total rows across the restored tables.
    pub rows: usize,
    /// Warehouse synopses restored ready-to-serve (no rebuild needed).
    pub synopses_recovered: usize,
    /// Logged synopses rejected because their coverage exceeds the recovered
    /// base tables (torn or stale entries).
    pub synopses_dropped: usize,
    /// Committed WAL records applied during replay.
    pub wal_records_applied: usize,
    /// Cold-tier pages read while loading checkpoint and payload blobs — the
    /// measured I/O cost of the warm restart.
    pub pages_read: u64,
    /// `true` if a torn tail was truncated while opening the log.
    pub wal_tail_torn: bool,
}

impl TasterEngine {
    /// Create an engine over a catalog with the given configuration.
    pub fn new(catalog: Arc<Catalog>, config: TasterConfig) -> Self {
        let io_model = IoModel::default();
        Self {
            store: SynopsisStore::new(config.buffer_quota_bytes, config.warehouse_quota_bytes),
            planner: Planner::new(config, io_model),
            tuner: Mutex::new(Tuner::new(&config)),
            metadata: RwLock::new(MetadataStore::new()),
            catalog,
            config,
            io_model,
            queries_executed: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            shared_scans: Arc::new(SharedScanRegistry::new()),
            coalescer: Coalescer::new(),
            builds: AtomicU64::new(0),
            builds_coalesced: AtomicU64::new(0),
            explain_enabled: AtomicBool::new(
                std::env::var("TASTER_EXPLAIN").map(|v| v == "1").unwrap_or(false),
            ),
            durability: None,
        }
    }

    /// Open an engine in **persistent mode**: durability files live under
    /// `dir` (`wal.log` + `pages.dat`), every table append is logged
    /// write-ahead before it publishes, and warehouse synopses + tuner state
    /// are persisted after each query. The current catalog contents are
    /// checkpointed immediately, so a crash at any later point recovers at
    /// least this state. Use [`recover`](Self::recover) to restart from an
    /// existing directory.
    pub fn open_durable(
        catalog: Arc<Catalog>,
        config: TasterConfig,
        dir: &std::path::Path,
    ) -> Result<Self, EngineError> {
        Self::open_durable_with_vfs(catalog, config, &StdVfs, dir)
    }

    /// [`open_durable`](Self::open_durable) over an explicit [`Vfs`] — the
    /// fault-injection tests run on `MemVfs`/`FaultVfs` through this.
    pub fn open_durable_with_vfs(
        catalog: Arc<Catalog>,
        config: TasterConfig,
        vfs: &dyn Vfs,
        dir: &std::path::Path,
    ) -> Result<Self, EngineError> {
        let (durability, _) = Durability::open(vfs, dir).map_err(EngineError::Storage)?;
        let durability = Arc::new(durability);
        let mut engine = Self::new(catalog, config);
        engine.durability = Some(durability.clone());
        durability
            .checkpoint_tables(&engine.catalog)
            .map_err(EngineError::Storage)?;
        engine.attach_append_sinks()?;
        engine.sync_durability()?;
        Ok(engine)
    }

    /// Recover an engine from the durability files under `dir`: replay the
    /// WAL, rebuild the catalog (checkpointed partitions + logged appends),
    /// re-register surviving warehouse synopses ready-to-serve, and restore
    /// the tuner window and counters. Synopses whose recorded coverage
    /// exceeds the recovered base tables (torn or stale entries) are dropped;
    /// merely *stale* synopses are kept and caught up by the ordinary
    /// staleness-refresh machinery on the next query.
    ///
    /// Recovery is idempotent: replaying any committed WAL prefix yields a
    /// valid published snapshot, and recovering twice from the same directory
    /// yields the same engine state.
    pub fn recover(
        config: TasterConfig,
        dir: &std::path::Path,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        Self::recover_with_vfs(config, &StdVfs, dir)
    }

    /// [`recover`](Self::recover) over an explicit [`Vfs`].
    pub fn recover_with_vfs(
        config: TasterConfig,
        vfs: &dyn Vfs,
        dir: &std::path::Path,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        let (durability, replayed) = Durability::open(vfs, dir).map_err(EngineError::Storage)?;
        let durability = Arc::new(durability);

        let catalog = Catalog::new();
        let mut rows = 0usize;
        let mut replayed_ops = 0usize;
        let tables = replayed.tables.len();
        for t in replayed.tables {
            replayed_ops += t.ops.len();
            let table = if t.partitions.is_empty() {
                // Mutations without a checkpoint: seed an empty table from
                // the first logged batch's schema.
                let Some(first) = t.ops.iter().find_map(|op| match op {
                    RecoveredOp::Append(b) => Some(b),
                    RecoveredOp::Delete(_) => None,
                }) else {
                    continue;
                };
                Table::empty(t.name, first.schema().clone(), t.seal_rows)
            } else {
                Table::from_recovered(
                    t.name,
                    t.partitions,
                    t.tombstones,
                    t.seal_rows,
                    t.deletes_logged,
                )
                .map_err(EngineError::Storage)?
            };
            // Re-applying logged mutations before any sink is attached:
            // replay must not re-log its own input. Ops replay in commit
            // order, so delete positions resolve against exactly the
            // physical layout they were logged against.
            for op in &t.ops {
                match op {
                    RecoveredOp::Append(batch) => {
                        table.append(batch).map_err(EngineError::Storage)?;
                    }
                    RecoveredOp::Delete(positions) => {
                        table.delete_rows(positions).map_err(EngineError::Storage)?;
                    }
                }
            }
            rows += table.num_rows();
            catalog.register(table);
        }

        let mut engine = Self::new(Arc::new(catalog), config);
        engine.durability = Some(durability.clone());

        // Restore surviving synopses: latest-upsert-wins state from the log,
        // validated against the recovered tables. Coverage beyond the
        // recovered rows means the entry refers to data that did not survive
        // (e.g. an append acknowledged after the synopsis record but torn
        // from the log) — drop it rather than serve phantom rows.
        let mut recovered = 0usize;
        let mut dropped = 0usize;
        {
            let mut metadata = engine.metadata.write();
            for s in replayed.synopses {
                let covered = s.rows_at_build.unwrap_or(0);
                // Coverage beyond the recovered rows — or a build-time delete
                // counter ahead of the recovered table's — means the entry
                // refers to mutations that did not survive the crash.
                let valid = s.descriptor.base_tables.iter().all(|t| {
                    engine
                        .catalog
                        .table(t)
                        .map(|t| t.num_rows() >= covered && t.deletes_logged() >= s.deletes_at_build)
                        .unwrap_or(false)
                });
                if !valid {
                    durability.drop_from_baseline(s.id);
                    dropped += 1;
                    continue;
                }
                metadata.restore(
                    s.descriptor.clone(),
                    s.actual_bytes,
                    s.rows_at_build,
                    s.refresh_count,
                    s.deletes_at_build,
                );
                engine.store.insert_into_warehouse(s.id, &s.payload, s.pinned);
                recovered += 1;
            }
        }

        if let Some(t) = &replayed.tuner {
            engine
                .tuner
                .lock()
                .restore_window(t.window, t.history.clone());
            engine
                .queries_executed
                .store(t.queries_executed, Ordering::Relaxed);
            engine.refreshes.store(t.refreshes, Ordering::Relaxed);
        }

        // Compact: checkpoint the recovered tables (superseding the replayed
        // ops) before re-arming the write-ahead path, then record the
        // eviction of any dropped synopses. When the log held no mutations
        // past its checkpoint there is nothing to fold in, and
        // re-checkpointing would make every restart cost a full table
        // rewrite — skip it.
        if replayed_ops > 0 {
            durability
                .checkpoint_tables(&engine.catalog)
                .map_err(EngineError::Storage)?;
        }
        engine.attach_append_sinks()?;
        engine.sync_durability()?;

        let report = RecoveryReport {
            tables,
            rows,
            synopses_recovered: recovered,
            synopses_dropped: dropped,
            wal_records_applied: replayed.records_applied,
            pages_read: durability.pages_read(),
            wal_tail_torn: replayed.tore,
        };
        Ok((engine, report))
    }

    /// The durability layer, when the engine runs in persistent mode.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Checkpoint all tables to the durability log (cold-tier spill and log
    /// compaction point). No-op for in-memory engines.
    pub fn checkpoint(&self) -> Result<(), EngineError> {
        if let Some(d) = &self.durability {
            d.checkpoint_tables(&self.catalog)
                .map_err(EngineError::Storage)?;
        }
        Ok(())
    }

    /// Install the durability layer as every table's [`AppendSink`]
    /// (write-ahead logging for the ingest path).
    fn attach_append_sinks(&self) -> Result<(), EngineError> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        for name in self.catalog.table_names() {
            let table = self.catalog.table(&name).map_err(EngineError::Storage)?;
            table.set_append_sink(Some(durability.clone()));
        }
        Ok(())
    }

    /// Persist the current warehouse residents and tuner state (diff-based;
    /// a quiet engine costs no I/O). Called after every state-changing entry
    /// point in persistent mode.
    fn sync_durability(&self) -> Result<(), EngineError> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        let residents = self.collect_warehouse_snapshots();
        let tuner = {
            let t = self.tuner.lock();
            TunerState {
                window: t.window(),
                history: t.window_history().to_vec(),
                queries_executed: self.queries_executed.load(Ordering::Relaxed),
                refreshes: self.refreshes.load(Ordering::Relaxed),
            }
        };
        durability
            .sync_warehouse(&residents, tuner)
            .map_err(EngineError::Storage)
    }

    /// Gather every warehouse-resident synopsis with its metadata, as the
    /// durability layer wants it. Payloads travel as `Arc`s — no copies.
    fn collect_warehouse_snapshots(&self) -> Vec<SynopsisSnapshot> {
        let metadata = self.metadata.read();
        let mut out = Vec::new();
        for id in self.store.materialized_ids() {
            if self.store.location(id) != Some(SynopsisLocation::Warehouse) {
                continue;
            }
            let Some(meta) = metadata.get(id) else {
                continue;
            };
            let payload = match &meta.descriptor.kind {
                SynopsisKind::Sample { .. } => {
                    self.store.sample(id).map(|(p, _)| PayloadRef::Sample(p))
                }
                SynopsisKind::SketchJoin { .. } => {
                    self.store.sketch(id).map(|(p, _)| PayloadRef::Sketch(p))
                }
            };
            let Some(payload) = payload else {
                continue;
            };
            out.push(SynopsisSnapshot {
                id,
                descriptor: meta.descriptor.clone(),
                actual_bytes: meta.actual_bytes.unwrap_or(meta.descriptor.estimated_bytes),
                rows_at_build: meta.rows_at_build,
                deletes_at_build: meta.deletes_at_build,
                refresh_count: meta.refresh_count,
                pinned: meta.descriptor.pinned,
                payload,
            });
        }
        out
    }

    /// Replace the I/O cost model (affects both planning and the simulated
    /// times reported in results).
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self.planner = Planner::new(self.config, io_model);
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &TasterConfig {
        &self.config
    }

    /// A shared handle to the catalog the engine executes over (ingest
    /// drivers append through it while queries run).
    pub fn catalog_handle(&self) -> Arc<Catalog> {
        self.catalog.clone()
    }

    /// Read access to the metadata store (for experiments and tests). The
    /// returned guard holds the metadata read lock — drop it before issuing
    /// queries from the same thread.
    pub fn metadata(&self) -> RwLockReadGuard<'_, MetadataStore> {
        self.metadata.read()
    }

    /// The synopsis store (read access for experiments and tests).
    pub fn store(&self) -> &SynopsisStore {
        &self.store
    }

    /// Current tuner window length.
    pub fn window(&self) -> usize {
        self.tuner.lock().window()
    }

    /// History of tuner window lengths (for the Fig. 8 experiment).
    pub fn window_history(&self) -> Vec<usize> {
        self.tuner.lock().window_history().to_vec()
    }

    /// Number of queries admitted so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed.load(Ordering::Relaxed)
    }

    /// Number of incremental synopsis refreshes performed so far (the
    /// ingestion counterpart of builds/evictions).
    pub fn synopsis_refreshes(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Number of queries that executed a synopsis-building plan.
    pub fn synopsis_builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Number of queries that coalesced onto a concurrent session's build
    /// instead of building the same synopsis themselves.
    pub fn builds_coalesced(&self) -> u64 {
        self.builds_coalesced.load(Ordering::Relaxed)
    }

    /// Counters for the shared-scan registry: morsel passes run vs. queries
    /// that attached to a concurrent pass.
    pub fn shared_scan_stats(&self) -> SharedScanStats {
        self.shared_scans.stats()
    }

    /// Enable or disable per-query explain output at runtime (equivalent to
    /// constructing the engine under `TASTER_EXPLAIN=1`). When enabled, every
    /// [`TasterResult::explain`] carries the planner's comparison.
    pub fn set_explain(&self, enabled: bool) {
        self.explain_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Change the synopsis warehouse quota at runtime (storage elasticity).
    /// The tuner immediately re-evaluates the stored synopses and evicts
    /// those that no longer fit the new budget.
    pub fn set_storage_budget(&self, bytes: usize) {
        self.store.set_warehouse_quota(bytes);
        let metadata = self.metadata.read();
        let mut tuner = self.tuner.lock();
        let evict = tuner.reevaluate(&metadata, &self.store);
        for id in evict {
            if self.store.warehouse_over_quota() || self.store.buffer_over_quota() {
                self.store.evict(id);
            }
        }
        // If still over quota (e.g. quota shrank drastically), evict
        // warehouse residents in ascending usefulness order (least
        // benefit-per-byte over the tuner window first) until it fits —
        // buffer entries cannot free warehouse bytes, so they are spared.
        if self.store.warehouse_over_quota() {
            for id in tuner.usefulness_order(&metadata, &self.store) {
                if !self.store.warehouse_over_quota() {
                    break;
                }
                if self.store.location(id) == Some(SynopsisLocation::Warehouse) {
                    self.store.evict(id);
                }
            }
        }
        drop(tuner);
        drop(metadata);
        // Best-effort: the diff stays pending on failure and the next
        // successful sync (e.g. after the next query) records the evictions.
        let _ = self.sync_durability();
    }

    /// Register a user hint: build a synopsis offline and pin it in the
    /// warehouse. Returns the work performed so callers can account for the
    /// offline phase separately from query execution (Fig. 7).
    pub fn add_offline_hint(
        &self,
        table: &str,
        strategy: OfflineStrategy,
        accuracy: Option<ErrorSpec>,
    ) -> Result<OfflineReport, EngineError> {
        let accuracy = accuracy.unwrap_or(ErrorSpec {
            relative_error: self.config.default_relative_error,
            confidence: self.config.default_confidence,
        });
        let build = build_offline_sample(&self.catalog, table, &strategy, accuracy, self.config.seed)?;
        let bytes = build.payload.size_bytes();
        let id = {
            let mut metadata = self.metadata.write();
            let id = metadata.allocate_id();
            let mut descriptor = build.descriptor.clone();
            descriptor.id = id;
            let id = metadata.register(descriptor);
            metadata.set_actual_size(id, bytes);
            // The build snapshot is the rows the payload *covers* (its own
            // source_rows), not a fresh num_rows() read: under concurrent
            // ingest the table may have grown since the build's snapshot,
            // and recording the larger figure would under-report staleness.
            let covered = match &build.payload {
                SynopsisPayload::Sample(s) => s.source_rows,
                SynopsisPayload::Sketch(sk) => sk.rows_summarized(),
            };
            metadata.set_build_snapshot(id, covered);
            if let Ok(t) = self.catalog.table(table) {
                metadata.set_build_deletes(id, t.deletes_logged());
            }
            id
        };
        self.store.insert_into_warehouse(id, &build.payload, true);
        self.sync_durability()?;

        let table_bytes = self.catalog.table(table)?.size_bytes();
        let scan_ns = self.io_model.scan_cost(table_bytes);
        let scramble_ns = if build.rows_scrambled > 0 {
            self.io_model.scan_cost(table_bytes) + self.io_model.materialize_cost(table_bytes)
        } else {
            0.0
        };
        let materialize_ns = self.io_model.materialize_cost(bytes);
        Ok(OfflineReport {
            synopsis_id: id,
            rows_scanned: build.rows_scanned,
            rows_scrambled: build.rows_scrambled,
            bytes,
            simulated_secs: (scan_ns + scramble_ns + materialize_ns) / 1e9,
        })
    }

    /// Execute one SQL query through the full Taster pipeline, drawing the
    /// sampler seed from the engine's deterministic per-query schedule.
    pub fn execute_sql(&self, sql: &str) -> Result<TasterResult, EngineError> {
        let slot = self.queries_executed.fetch_add(1, Ordering::Relaxed);
        self.execute_sql_seeded(sql, mix_seed(self.config.seed, slot))
    }

    /// [`execute_sql`](Self::execute_sql), but force the plan comparison into
    /// [`TasterResult::explain`] for this query regardless of the engine-wide
    /// explain toggle. This is the per-session explain path: the server
    /// front-end calls it for requests carrying the explain flag, so each
    /// session receives its own complete block.
    pub fn execute_sql_explained(&self, sql: &str) -> Result<TasterResult, EngineError> {
        let slot = self.queries_executed.fetch_add(1, Ordering::Relaxed);
        self.execute_inner(sql, mix_seed(self.config.seed, slot), true)
    }

    /// Execute one SQL query with an explicit sampler seed.
    ///
    /// [`execute_sql`](Self::execute_sql) derives the seed from an atomic
    /// query counter, which is deterministic for a serial caller but assigns
    /// seeds to queries in admission order when sessions race. Tests and
    /// experiments that need a query's randomness pinned regardless of thread
    /// interleaving pass the seed explicitly. Queries run through this method
    /// do not advance the engine's seed schedule.
    pub fn execute_sql_seeded(&self, sql: &str, seed: u64) -> Result<TasterResult, EngineError> {
        self.execute_inner(sql, seed, false)
    }

    fn execute_inner(
        &self,
        sql: &str,
        seed: u64,
        force_explain: bool,
    ) -> Result<TasterResult, EngineError> {
        let query = parse_query(sql)?;
        let planning_start = Instant::now();

        // Online ingestion: bring stale synopses up to date *before*
        // planning, so the planner can match the refreshed payload instead of
        // paying for a from-scratch rebuild — this is the tuner weighing
        // "refresh what exists" against "materialize anew". Stale synopses
        // whose projected growth no longer fits their tier are evicted here
        // under the same budget the keep/evict selection uses.
        let actions = {
            let metadata = self.metadata.read();
            let tuner = self.tuner.lock();
            tuner.refresh_actions(
                &metadata,
                &self.store,
                &|t| self.catalog.table(t).ok().map(|t| t.num_rows()),
                &|t| self.catalog.table(t).ok().map(|t| t.deletes_logged()),
                self.config.max_staleness,
            )
        };
        for id in actions.evict {
            self.store.evict(id);
        }
        for id in actions.refresh {
            self.refresh_synopsis(id);
        }

        // Plan and decide under the metadata lock: planning registers
        // candidate synopses and appends to the query log, and the tuner's
        // decision must see the log state its own query just produced.
        // Matched synopses come back leased (inside `output`), so nothing
        // decided here — or concurrently — can pull them out from under the
        // execution below. Lock order: metadata → tuner → store tiers.
        let (output, decision) = {
            let mut metadata = self.metadata.write();
            let output = self
                .planner
                .plan(&query, &self.catalog, &mut metadata, &self.store)?;
            let seq = metadata.record_query(output.exact_cost_ns, output.alternatives());
            let decision = self.tuner.lock().decide(&output, &metadata, &self.store);
            // Label the log entry with the access paths of the chosen plan,
            // so the usefulness window can tell index wins apart from
            // synopsis wins (and the tuner never credits a synopsis for a
            // speedup an index delivered).
            let chosen_plan = match decision.chosen {
                ChosenPlan::Exact => &output.exact_plan,
                ChosenPlan::Candidate(i) => &output.candidates[i].plan,
            };
            let paths = chosen_plan.access_paths();
            if !paths.is_empty() {
                let label = paths
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                metadata.record_access_choice(seq, label);
            }
            (output, decision)
        };
        // Explain output rides the result (never a shared stream): each
        // session gets its own complete block, so concurrent explains cannot
        // interleave.
        let explain = if force_explain || self.explain_enabled.load(Ordering::Relaxed) {
            Some(output.explain())
        } else {
            None
        };

        // Apply the tuner's evict set before executing — but only under real
        // storage pressure. The keep-set is a knapsack under the storage
        // budget: while everything materialized still fits its tier, evicting
        // the not-kept remainder frees nothing anyone needs and forces a
        // gratuitous rebuild the moment the workload window swings back (a
        // session storm interleaving exact and approximate queries would
        // otherwise thrash build/evict once per swing of the query window).
        // Entries leased by this plan (or any concurrent in-flight plan) are
        // only logically removed and stay readable until those plans finish.
        for id in &decision.evict {
            let usage = self.store.usage();
            if usage.buffer_bytes <= usage.buffer_quota
                && usage.warehouse_bytes <= usage.warehouse_quota
            {
                break;
            }
            self.store.evict(*id);
        }
        let planning_ns = planning_start.elapsed().as_nanos();

        let chosen = match decision.chosen {
            ChosenPlan::Exact => None,
            ChosenPlan::Candidate(i) => Some(&output.candidates[i]),
        };
        let mut plan = chosen.map_or(&output.exact_plan, |c| &c.plan);
        let mut description =
            chosen.map_or_else(|| "exact plan".to_string(), |c| c.description.clone());
        let mut reused = chosen.map_or_else(Vec::new, |c| c.uses.clone());
        let mut created = chosen.map_or_else(Vec::new, |c| c.creates.clone());
        let mut leases = chosen.map_or_else(Vec::new, |c| c.leases.clone());

        // Build coalescing: when the chosen plan would materialize a synopsis
        // another session is already building (same template → same id via
        // fingerprint dedup), block for that build instead of duplicating it,
        // then lease the fresh payload and execute the candidate's
        // `future_plan` — the plan the planner already costed for "this
        // synopsis exists". A lease miss (builder failed, or an eviction
        // reaped the id before we arrived — the PR 4 graveyard only shields
        // payloads leased *before* eviction) falls back to building.
        let mut build_guard: Option<BuildGuard> = None;
        if let (Some(c), [id]) = (chosen, created.as_slice()) {
            let id = *id;
            let mut attempts = 0;
            loop {
                // A racer may have materialized this synopsis between this
                // session's planning and now (its build both started and
                // retired inside our planning window). Lease and reuse it —
                // rebuilding what the store already holds is the one thing
                // the coalescer exists to prevent.
                if let (Some(lease), Some(future)) =
                    (self.store.lease(id), c.future_plan.as_ref())
                {
                    plan = future;
                    reused = vec![id];
                    created = vec![];
                    leases = vec![lease];
                    description = format!("{} [coalesced]", c.description);
                    self.builds_coalesced.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                match self.coalescer.begin(id) {
                    BuildTicket::Build(guard) => {
                        build_guard = Some(guard);
                        break;
                    }
                    BuildTicket::Coalesced => {
                        // Woken by the builder: loop back to the lease probe.
                        attempts += 1;
                        if attempts >= 3 {
                            // Coalescing is an optimization, never a
                            // correctness dependency: build unprotected.
                            break;
                        }
                    }
                }
            }
        }

        let ctx = ExecutionContext::new(self.catalog.clone())
            .with_provider(Arc::new(LeasedProvider {
                leases,
                store: self.store.clone(),
            }))
            .with_io_model(self.io_model)
            .with_seed(seed)
            .with_shared_scans(Arc::clone(&self.shared_scans));
        let mut result = execute(plan, &ctx)?;

        // Persistent mode: charge reused warehouse synopses by the *measured*
        // page footprint of their durable payloads (the pager's accounting)
        // instead of the simulated byte model — `simulated_ns` switches to
        // the page model whenever `cold_pages_read` is non-zero.
        if let Some(durability) = &self.durability {
            let pages: u64 = reused
                .iter()
                .filter(|id| self.store.location(**id) == Some(SynopsisLocation::Warehouse))
                .map(|id| durability.pages_for_synopsis(*id))
                .sum();
            result.metrics.cold_pages_read += pages;
        }

        // Materialize byproducts into the buffer, then let the tuner's `keep`
        // set drive promotion to the warehouse / eviction. The build snapshot
        // records exactly the rows the payload covers (the sample's source
        // rows / the sketch's summarized rows), which is what staleness is
        // judged against as the base table keeps growing.
        if !result.byproducts.is_empty() {
            self.builds
                .fetch_add(result.byproducts.len() as u64, Ordering::Relaxed);
            let mut metadata = self.metadata.write();
            for (id, payload) in &result.byproducts {
                metadata.set_actual_size(*id, payload.size_bytes());
                let covered = match payload {
                    SynopsisPayload::Sample(s) => s.source_rows,
                    SynopsisPayload::Sketch(sk) => sk.rows_summarized(),
                };
                metadata.set_build_snapshot(*id, covered);
                let deletes = metadata
                    .get(*id)
                    .and_then(|m| m.descriptor.base_tables.first().cloned())
                    .and_then(|t| self.catalog.table(&t).ok())
                    .map(|t| t.deletes_logged());
                if let Some(deletes) = deletes {
                    metadata.set_build_deletes(*id, deletes);
                }
                self.store.insert_into_buffer(*id, payload, false);
            }
        }
        self.manage_buffer(&decision.keep);
        // Only now — with the byproduct inserted into the store — may
        // coalesced waiters wake: their first act is `store.lease(id)`, which
        // must find the materialized payload.
        drop(build_guard);

        // Make this query's warehouse effects durable (diff-based — one group
        // commit when something changed, no I/O otherwise).
        self.sync_durability()?;

        let simulated_secs = result.metrics.simulated_secs(&self.io_model);
        // `output` (and the leases of every matched candidate) drops here:
        // synopses the tuner evicted mid-flight are reaped now.
        Ok(TasterResult {
            approximate: result.approximate,
            plan_description: description,
            reused_synopses: reused,
            created_synopses: created,
            planning_ns,
            simulated_secs,
            explain,
            result,
        })
    }

    /// Incrementally refresh a stale synopsis in place: absorb exactly the
    /// base-table rows appended since its build snapshot (no rebuild over the
    /// old rows) and re-insert the grown payload into the tier it lives in.
    ///
    /// The replacement goes through the store's lease/graveyard machinery:
    /// in-flight plans that leased the old payload keep reading their
    /// snapshot, the next plan sees the refreshed one. Returns `false` when
    /// there is nothing to do (not materialized, table not grown, or the
    /// descriptor is not refreshable).
    pub fn refresh_synopsis(&self, id: SynopsisId) -> bool {
        if self.store.location(id).is_none() {
            return false;
        }
        let (descriptor, deletes_at_build) = {
            let metadata = self.metadata.read();
            let Some(meta) = metadata.get(id) else {
                return false;
            };
            (meta.descriptor.clone(), meta.deletes_at_build)
        };
        let [table] = &descriptor.base_tables[..] else {
            return false;
        };
        let Ok(table) = self.catalog.table(table) else {
            return false;
        };
        // Counter before snapshot: a delete racing in between makes the
        // recorded counter *older* than the snapshot, so the next staleness
        // check still sees drift and schedules another rebuild — never the
        // reverse (drift masked as fresh).
        let deletes_now = table.deletes_logged();
        let snapshot = table.snapshot();

        let payload = if deletes_now != deletes_at_build {
            self.rebuild_from_live(id, &descriptor, &snapshot, deletes_now)
        } else {
            self.absorb_append_delta(id, &descriptor, &snapshot)
        };
        let Some(payload) = payload else {
            return false;
        };

        // Atomic in-place replace: if a concurrent tuner evicted (or moved)
        // the entry while the delta was being absorbed, the refresh is
        // dropped rather than resurrecting an entry the budget decision
        // removed.
        if !self.store.refresh_in_place(id, &payload) {
            return false;
        }
        let mut metadata = self.metadata.write();
        metadata.set_actual_size(id, payload.size_bytes());
        metadata.record_refresh(id, snapshot.num_rows());
        metadata.set_build_deletes(id, deletes_now);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Append-only refresh: absorb exactly the suffix of rows appended past
    /// the payload's own coverage.
    ///
    /// The resume point comes from the *payload itself* (the sample's
    /// `source_rows` / the sketch's `rows_summarized`), not the metadata
    /// snapshot: a concurrent session may have refreshed between our
    /// staleness check and here, and resuming from the metadata value
    /// would absorb the same delta twice. Reading the payload's own
    /// coverage makes refresh idempotent — a raced second refresh sees an
    /// empty delta (or recomputes the identical payload, since the seed
    /// derives from the resume point).
    fn absorb_append_delta(
        &self,
        id: SynopsisId,
        descriptor: &crate::synopsis::SynopsisDescriptor,
        snapshot: &TableSnapshot,
    ) -> Option<SynopsisPayload> {
        match &descriptor.kind {
            SynopsisKind::Sample { method } => {
                let (old, _) = self.store.sample(id)?;
                let built = old.source_rows;
                if snapshot.num_rows() <= built {
                    self.catch_up_build_snapshot(id, built);
                    return None;
                }
                // Appends only extend the tail, so global row positions are
                // stable and `rows_from(built)` is exactly the unseen suffix.
                let delta = snapshot.rows_from(built);
                let seed = mix_seed(self.config.seed ^ id, built as u64);
                let mut sample = (*old).clone();
                let absorbed = match method {
                    SampleMethod::Uniform { probability } => {
                        let mut s = UniformSampler::new(*probability, seed);
                        delta.iter().try_for_each(|b| s.update(&mut sample, b))
                    }
                    SampleMethod::Distinct {
                        stratification,
                        delta: min_rows,
                        probability,
                    } => {
                        let cfg = DistinctSamplerConfig::new(
                            stratification.clone(),
                            *min_rows,
                            *probability,
                        );
                        let mut s = DistinctSampler::new(cfg, seed);
                        delta.iter().try_for_each(|b| s.update(&mut sample, b))
                    }
                };
                absorbed.ok()?;
                Some(SynopsisPayload::Sample(sample))
            }
            SynopsisKind::SketchJoin { .. } => {
                let (old, _) = self.store.sketch(id)?;
                let built = old.rows_summarized();
                if snapshot.num_rows() <= built {
                    self.catch_up_build_snapshot(id, built);
                    return None;
                }
                let delta = snapshot.rows_from(built);
                let mut sketch = (*old).clone();
                delta.iter().try_for_each(|b| sketch.add_batch(b)).ok()?;
                Some(SynopsisPayload::Sketch(sketch))
            }
        }
    }

    /// Deletion-aware refresh: the base table's mutation counter moved past
    /// the synopsis's build point, so physical positions may have shifted
    /// (tail deletes, compaction) and coverage shrank — positional append
    /// catch-up is unsound. Rebuild the payload from the live rows of the
    /// current snapshot instead: samples are redrawn (restoring the distinct
    /// sampler's per-stratum δ guarantee that reweighting cannot repair),
    /// and sketches — which cannot subtract — are recomputed from scratch.
    /// The seed derives from the mutation counter, so a raced second rebuild
    /// recomputes the identical payload.
    fn rebuild_from_live(
        &self,
        id: SynopsisId,
        descriptor: &crate::synopsis::SynopsisDescriptor,
        snapshot: &TableSnapshot,
        deletes_now: u64,
    ) -> Option<SynopsisPayload> {
        let live = snapshot.live_batches();
        let seed = mix_seed(self.config.seed ^ id, deletes_now);
        match &descriptor.kind {
            SynopsisKind::Sample { method } => {
                let sample = match method {
                    SampleMethod::Uniform { probability } => {
                        UniformSampler::new(*probability, seed).sample_partitions(&live)
                    }
                    SampleMethod::Distinct {
                        stratification,
                        delta: min_rows,
                        probability,
                    } => {
                        let cfg = DistinctSamplerConfig::new(
                            stratification.clone(),
                            *min_rows,
                            *probability,
                        );
                        DistinctSampler::new(cfg, seed)
                            .sample_partitions(&live)
                            .ok()?
                    }
                };
                let mut sample = sample?;
                // Later append catch-up resumes from *physical* positions:
                // the rebuild covers the whole physical prefix, even though
                // only its live rows were drawn from.
                sample.source_rows = snapshot.num_rows();
                Some(SynopsisPayload::Sample(sample))
            }
            SynopsisKind::SketchJoin {
                key_columns,
                value_column,
                ..
            } => {
                let mut sketch = SketchJoin::build(
                    &live,
                    key_columns.clone(),
                    value_column.clone(),
                    0.0005,
                    0.01,
                )
                .ok()?;
                sketch.set_rows_summarized(snapshot.num_rows());
                Some(SynopsisPayload::Sketch(sketch))
            }
        }
    }

    /// A racing session refreshed the payload but may not have written the
    /// metadata snapshot yet (payload insert happens before the metadata
    /// write): fold the payload's own coverage into the metadata so this
    /// session's planner does not reject the freshly refreshed synopsis as
    /// stale.
    fn catch_up_build_snapshot(&self, id: SynopsisId, covered: usize) {
        let mut metadata = self.metadata.write();
        if let Some(meta) = metadata.get(id) {
            if meta.rows_at_build.unwrap_or(0) < covered {
                metadata.set_build_snapshot(id, covered);
            }
        }
    }

    /// Delete every live row of `table_name` matching the AND-ed
    /// `predicates` (empty ⇒ every live row). Positions are resolved against
    /// one snapshot, logged write-ahead in persistent mode, and published as
    /// one atomically swapped tombstoned snapshot — sealed partitions stay
    /// immutable, the unsealed tail deletes in place.
    ///
    /// Materialized uniform samples over the table get their weights
    /// tombstone-corrected in place (bias bounded by the deleted fraction,
    /// see [`WeightedSample::correct_for_deletions`]) so estimates track the
    /// shrunk table immediately; the build-time delete counter is left
    /// untouched, so the staleness machinery still schedules the true
    /// rebuild once the drift crosses the bound. Distinct samples are never
    /// reweighted — a delete batch can break their per-stratum δ guarantee —
    /// and instead force-refresh on the next query.
    ///
    /// Resolution and application are optimistic: positions resolve against
    /// one snapshot and apply through [`Table::delete_rows_at`], which
    /// rejects them if a concurrent compaction or tail delete moved rows in
    /// between (stale positions would delete the *wrong* rows). On such a
    /// conflict the whole resolve-and-apply retries against a fresh
    /// snapshot; conflicts require a layout change mid-flight, so the loop
    /// terminates as soon as the compactor goes quiet.
    pub fn delete_where(
        &self,
        table_name: &str,
        predicates: &[Expr],
    ) -> Result<MutationReport, EngineError> {
        let table = self.catalog.table(table_name)?;
        let filter = combine_predicates(predicates);
        let report = loop {
            let snapshot = table.snapshot();
            let (positions, _) = match_live_rows(&snapshot, filter.as_ref())?;
            match table.delete_rows_at(&positions, snapshot.layout_epoch()) {
                Ok(report) => break report,
                Err(StorageError::Conflict(_)) => continue,
                Err(err) => return Err(EngineError::Storage(err)),
            }
        };
        if report.rows_deleted > 0 {
            self.correct_samples_after_delete(table_name, &table);
            self.sync_durability()?;
        }
        Ok(MutationReport {
            rows_affected: report.rows_deleted,
            table_version: report.version,
        })
    }

    /// Update every live row of `table_name` matching the AND-ed
    /// `predicates`: delete + re-append of the assigned rows, published as
    /// two individually consistent snapshots under one mutation-lock
    /// acquisition (the storage layer's [`Table::update_rows`] contract).
    /// Each `(column, literal)` assignment replaces that column's value in
    /// every matched row; unassigned columns are carried over unchanged.
    pub fn update_where(
        &self,
        table_name: &str,
        assignments: &[(String, Value)],
        predicates: &[Expr],
    ) -> Result<MutationReport, EngineError> {
        if assignments.is_empty() {
            return Err(EngineError::Plan("UPDATE with no assignments".to_string()));
        }
        let table = self.catalog.table(table_name)?;
        let filter = combine_predicates(predicates);
        // Same optimistic resolve-and-apply as `delete_where`: the gathered
        // replacement rows and the positions both come from one snapshot, so
        // a layout conflict re-gathers everything.
        let report = loop {
            let snapshot = table.snapshot();
            let (positions, masks) = match_live_rows(&snapshot, filter.as_ref())?;
            if positions.is_empty() {
                return Ok(MutationReport {
                    rows_affected: 0,
                    table_version: snapshot.version(),
                });
            }
            // Gather the matched rows, then rewrite the assigned columns.
            let parts: Vec<RecordBatch> = snapshot
                .partitions()
                .iter()
                .zip(&masks)
                .filter(|(_, m)| !m.is_none_selected())
                .map(|(p, m)| p.filter_mask(m))
                .collect();
            let refs: Vec<&RecordBatch> = parts.iter().collect();
            let matched = RecordBatch::concat_refs(&refs).map_err(EngineError::Storage)?;
            let schema = matched.schema().clone();
            let mut columns: Vec<ColumnData> = matched.columns().to_vec();
            for (name, value) in assignments {
                let idx = schema.index_of(name).map_err(EngineError::Storage)?;
                let mut col =
                    ColumnData::with_capacity(schema.field(idx).data_type, matched.num_rows());
                for _ in 0..matched.num_rows() {
                    col.push(value).map_err(EngineError::Storage)?;
                }
                columns[idx] = col;
            }
            let replacement =
                RecordBatch::try_new(schema, columns).map_err(EngineError::Storage)?;

            match table.update_rows_at(&positions, &replacement, snapshot.layout_epoch()) {
                Ok(report) => break report,
                Err(StorageError::Conflict(_)) => continue,
                Err(err) => return Err(EngineError::Storage(err)),
            }
        };
        if report.rows_deleted > 0 {
            self.correct_samples_after_delete(table_name, &table);
            self.sync_durability()?;
        }
        Ok(MutationReport {
            rows_affected: report.rows_deleted,
            table_version: report.version,
        })
    }

    /// Compact every table whose sealed partitions crossed the configured
    /// dead-row threshold ([`TasterConfig::compact_dead_fraction`]),
    /// returning a report per table that changed. Compaction never changes a
    /// query answer — it only re-materializes live rows — but it advances the
    /// mutation counter, so synopses over a compacted table rebuild from live
    /// rows at their next refresh instead of resuming from now-shifted
    /// physical positions.
    pub fn compact_now(&self) -> Result<Vec<(String, CompactReport)>, EngineError> {
        let mut out = Vec::new();
        for name in self.catalog.table_names() {
            let table = self.catalog.table(&name)?;
            let report = table
                .compact(self.config.compact_dead_fraction)
                .map_err(EngineError::Storage)?;
            if report.partitions_compacted > 0 {
                out.push((name, report));
            }
        }
        if !out.is_empty() {
            self.sync_durability()?;
        }
        Ok(out)
    }

    /// Start the background compactor: a thread sweeping all tables every
    /// `interval` through [`compact_now`](Self::compact_now). Stop (and
    /// join) it by dropping the returned handle.
    pub fn start_background_compactor(
        self: &Arc<Self>,
        interval: std::time::Duration,
    ) -> CompactorHandle {
        let engine = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // Sleep in short steps so a stop request never waits out a long
            // interval.
            let step = interval.min(std::time::Duration::from_millis(20));
            let mut since_sweep = interval; // sweep immediately on start
            while !flag.load(Ordering::Relaxed) {
                if since_sweep >= interval {
                    since_sweep = std::time::Duration::ZERO;
                    let _ = engine.compact_now();
                } else {
                    std::thread::sleep(step);
                    since_sweep += step;
                }
            }
        });
        CompactorHandle {
            stop,
            handle: Some(handle),
        }
    }

    /// Tombstone-correct materialized uniform samples over `table_name`
    /// after a delete: one multiplicative weight rescale targeting the live
    /// row count. Only samples covering the whole physical prefix are
    /// corrected; anything else (including distinct samples and sketches)
    /// goes through the ordinary refresh machinery.
    fn correct_samples_after_delete(&self, table_name: &str, table: &Table) {
        let snapshot = table.snapshot();
        for id in self.store.materialized_ids() {
            let is_uniform_over_table = {
                let metadata = self.metadata.read();
                metadata.get(id).is_some_and(|m| {
                    m.descriptor.base_tables == [table_name]
                        && matches!(
                            &m.descriptor.kind,
                            SynopsisKind::Sample {
                                method: SampleMethod::Uniform { .. }
                            }
                        )
                })
            };
            if !is_uniform_over_table {
                continue;
            }
            let Some((old, _)) = self.store.sample(id) else {
                continue;
            };
            if old.source_rows != snapshot.num_rows() {
                continue;
            }
            let mut corrected = (*old).clone();
            corrected.correct_for_deletions(snapshot.live_rows());
            self.store
                .refresh_in_place(id, &SynopsisPayload::Sample(corrected));
        }
    }

    /// Apply the buffer policy: synopses in the tuner's keep-set are promoted
    /// to the warehouse when they fit; once the buffer exceeds its quota the
    /// remaining (non-pinned) entries are dropped oldest-id-first.
    fn manage_buffer(&self, keep: &[SynopsisId]) {
        for id in self.store.buffer_ids() {
            if keep.contains(&id) {
                let size = self.store.size_of(id).unwrap_or(0);
                if size <= self.store.warehouse_free_bytes() {
                    self.store.promote_to_warehouse(id);
                }
            }
        }
        if self.store.buffer_over_quota() {
            for id in self.store.buffer_ids() {
                if !self.store.buffer_over_quota() {
                    break;
                }
                self.store.evict(id);
            }
        }
    }
}

/// What one [`TasterEngine::delete_where`] / [`TasterEngine::update_where`]
/// call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReport {
    /// Live rows the mutation touched (deleted, or deleted-and-replaced).
    pub rows_affected: usize,
    /// The table's snapshot version after the mutation.
    pub table_version: u64,
}

/// Handle on the background compactor thread started by
/// [`TasterEngine::start_background_compactor`]. Dropping the handle stops
/// and joins the thread.
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Signal the compactor to stop and join it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// AND together a query's predicate list (the parser's implicit conjunction).
fn combine_predicates(predicates: &[Expr]) -> Option<Expr> {
    predicates
        .iter()
        .cloned()
        .reduce(|a, b| Expr::binary(a, BinaryOp::And, b))
}

/// Resolve the live rows of `snapshot` matching `filter` to global row
/// positions plus the per-partition selection masks that produced them
/// (tombstoned rows are excluded from both).
fn match_live_rows(
    snapshot: &TableSnapshot,
    filter: Option<&Expr>,
) -> Result<(Vec<usize>, Vec<SelectionMask>), EngineError> {
    let mut positions = Vec::new();
    let mut masks = Vec::with_capacity(snapshot.partitions().len());
    let mut offset = 0usize;
    for (i, part) in snapshot.partitions().iter().enumerate() {
        let mut mask = match filter {
            Some(expr) => expr.evaluate_predicate(part)?,
            None => SelectionMask::all(part.num_rows()),
        };
        if let Some(tomb) = snapshot.tombstone(i) {
            mask.and_not_with(tomb);
        }
        positions.extend(mask.iter_selected().map(|j| offset + j));
        masks.push(mask);
        offset += part.num_rows();
    }
    Ok((positions, masks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let cat = Catalog::new();
        let orders = BatchBuilder::new()
            .column("o_id", (0..rows as i64).collect::<Vec<_>>())
            .column("o_cust", (0..rows as i64).map(|i| i % 100).collect::<Vec<_>>())
            .column("o_flag", (0..rows as i64).map(|i| i % 5).collect::<Vec<_>>())
            .column(
                "o_price",
                (0..rows).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 8).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..100i64).collect::<Vec<_>>())
            .column("c_region", (0..100i64).map(|i| i % 4).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customer", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn engine(rows: usize) -> TasterEngine {
        let cat = catalog(rows);
        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
        TasterEngine::new(cat, config)
    }

    const Q: &str =
        "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";

    /// More `orders` rows continuing the generator pattern of [`catalog`].
    fn orders_delta(lo: usize, hi: usize) -> taster_storage::RecordBatch {
        BatchBuilder::new()
            .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
            .column("o_cust", (lo as i64..hi as i64).map(|i| i % 100).collect::<Vec<_>>())
            .column("o_flag", (lo as i64..hi as i64).map(|i| i % 5).collect::<Vec<_>>())
            .column(
                "o_price",
                (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn index_path_wins_for_selective_point_query_and_is_recorded() {
        let cat = catalog(50_000);
        cat.table("orders").unwrap().create_index("o_id").unwrap();
        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
        let eng = TasterEngine::new(cat, config);

        let res = eng
            .execute_sql("SELECT o_id, o_price FROM orders WHERE o_id = 4242")
            .unwrap();
        assert!(!res.approximate);
        assert!(
            res.plan_description.contains("index access path"),
            "tuner must pick the index candidate, chose: {}",
            res.plan_description
        );
        assert_eq!(res.result.rows.num_rows(), 1);
        // The probe charges only the probed rows, not whole partitions.
        assert!(
            res.result.metrics.base_rows_scanned < 1_000,
            "probed {} rows",
            res.result.metrics.base_rows_scanned
        );
        // The win lands in the query log, visible to the usefulness window.
        assert!(eng.metadata.read().access_path_wins(10) >= 1);
    }

    #[test]
    fn first_query_builds_then_second_reuses() {
        let eng = engine(50_000);
        let first = eng.execute_sql(Q).unwrap();
        assert!(first.approximate);
        assert!(!first.created_synopses.is_empty());
        assert!(first.result.metrics.base_rows_scanned >= 50_000);

        let second = eng.execute_sql(Q).unwrap();
        assert!(
            !second.reused_synopses.is_empty(),
            "second identical query must reuse the materialized synopsis: {}",
            second.plan_description
        );
        assert_eq!(
            second.result.metrics.base_rows_scanned, 0,
            "reuse must avoid scanning the base table"
        );
        assert!(second.simulated_secs < first.simulated_secs);
    }

    #[test]
    fn approximate_results_are_close_to_exact() {
        let eng = engine(50_000);
        let _ = eng.execute_sql(Q).unwrap();
        let approx = eng.execute_sql(Q).unwrap();

        // Exact reference computed directly through the engine.
        let exact_query = taster_engine::parse_query(Q).unwrap();
        let exact_plan = exact_query.to_exact_plan(&eng.catalog).unwrap();
        let ctx = ExecutionContext::new(eng.catalog.clone());
        let exact = execute(&exact_plan, &ctx).unwrap();

        let (err, missed) = approx.result.error_vs(&exact);
        assert_eq!(missed, 0, "no groups may be missed");
        assert!(err < 0.15, "relative error too large: {err}");
    }

    #[test]
    fn storage_elasticity_evicts_when_quota_shrinks() {
        let eng = engine(30_000);
        let _ = eng.execute_sql(Q).unwrap();
        let _ = eng.execute_sql("SELECT o_cust, AVG(o_price) FROM orders GROUP BY o_cust").unwrap();
        assert!(eng.store().usage().warehouse_bytes + eng.store().usage().buffer_bytes > 0);
        eng.set_storage_budget(0);
        assert_eq!(eng.store().usage().warehouse_bytes, 0);
    }

    #[test]
    fn hints_pin_offline_synopses() {
        use taster_engine::context::SynopsisProvider as _;
        let eng = engine(30_000);
        let report = eng
            .add_offline_hint(
                "orders",
                OfflineStrategy::Variational { fraction: 0.02 },
                None,
            )
            .unwrap();
        assert!(report.bytes > 0);
        assert!(report.rows_scrambled > 0);
        assert!(report.simulated_secs > 0.0);
        // The pinned synopsis survives a quota collapse.
        eng.set_storage_budget(0);
        assert!(eng.store().sample(report.synopsis_id).is_some());
    }

    #[test]
    fn join_query_runs_end_to_end() {
        let eng = engine(20_000);
        let res = eng
            .execute_sql(
                "SELECT c_region, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY c_region",
            )
            .unwrap();
        assert_eq!(res.result.num_groups(), 4);
        let total: f64 = res
            .result
            .groups
            .iter()
            .map(|g| g.aggregates[0].value)
            .sum();
        assert!((total - 20_000.0).abs() / 20_000.0 < 0.1, "{total}");
    }

    #[test]
    fn non_approximable_query_falls_back_to_exact() {
        let eng = engine(5_000);
        let res = eng
            .execute_sql("SELECT o_id, o_price FROM orders WHERE o_price > 990")
            .unwrap();
        assert!(!res.approximate);
        assert_eq!(res.plan_description, "exact plan");
    }

    /// The headline synopsis-lifetime race, reproduced at component level:
    /// a synopsis matched (and leased) at plan time, then evicted by a
    /// tuner's evict-set before the plan runs — exactly what a concurrent
    /// session's tuner can do between this session's planning and execution.
    /// The leased plan must still execute, produce the same result as before
    /// the eviction, and the synopsis must be gone once the plan is dropped.
    #[test]
    fn leased_synopsis_survives_tuner_eviction_until_query_completes() {
        use taster_engine::context::SynopsisProvider as _;

        let eng = engine(30_000);
        // Materialize a sample, then verify it is matched by a reuse plan.
        let first = eng.execute_sql(Q).unwrap();
        let id = first.created_synopses[0];
        assert!(eng.store().location(id).is_some());

        let query = parse_query(Q).unwrap();
        let mut metadata = eng.metadata.write();
        let output = eng
            .planner
            .plan(&query, &eng.catalog, &mut metadata, &eng.store)
            .unwrap();
        drop(metadata);
        let reuse = output
            .candidates
            .iter()
            .find(|c| c.uses.contains(&id))
            .expect("materialized sample must produce a reuse candidate");
        assert_eq!(reuse.leases.len(), 1, "match must carry a lease");

        let ctx = ExecutionContext::new(eng.catalog.clone())
            .with_provider(Arc::new(eng.store().clone()))
            .with_seed(7);
        let before = execute(&reuse.plan, &ctx).unwrap();

        // A (concurrent) tuner evicts the matched synopsis mid-query.
        assert!(eng.store().evict(id));
        assert_eq!(eng.store().location(id), None, "logically evicted");

        // The leased plan still executes and sees the identical payload.
        let during = execute(&reuse.plan, &ctx).unwrap();
        assert_eq!(before.groups.len(), during.groups.len());
        for (b, d) in before.groups.iter().zip(&during.groups) {
            assert_eq!(b.key, d.key);
            for (ab, ad) in b.aggregates.iter().zip(&d.aggregates) {
                assert_eq!(ab.value, ad.value, "eviction must not change the result");
            }
        }

        // Once the query (the planner output holding the lease) completes,
        // the synopsis is reaped.
        drop(output);
        assert!(eng.store().sample(id).is_none(), "gone after the query");
    }

    /// Fallback eviction under storage elasticity follows ascending
    /// usefulness (benefit-per-byte over the tuner window), not ascending id.
    #[test]
    fn storage_budget_fallback_evicts_least_useful_first() {
        let eng = engine(30_000);
        // Query A's synopsis is heavily reused (high usefulness); it gets a
        // *lower* id than query B's, so the old ascending-id fallback would
        // evict it first.
        for _ in 0..6 {
            let _ = eng.execute_sql(Q).unwrap();
        }
        let useful = eng.execute_sql(Q).unwrap().reused_synopses[0];
        let other = eng
            .execute_sql("SELECT o_cust, AVG(o_price) FROM orders GROUP BY o_cust")
            .unwrap();
        let less_useful = other.created_synopses[0];
        assert!(useful < less_useful, "usefulness order must beat id order");
        // Both must be in the warehouse for the quota shrink to bite.
        for id in [useful, less_useful] {
            assert!(
                eng.store().location(id).is_some(),
                "synopsis {id} must be materialized"
            );
        }

        // Shrink the budget so only the more useful synopsis fits.
        let keep_bytes = eng.store().size_of(useful).unwrap();
        eng.set_storage_budget(keep_bytes);
        assert!(
            eng.store().location(useful).is_some(),
            "high-usefulness synopsis must survive"
        );
        assert!(
            eng.store().location(less_useful).is_none(),
            "low-usefulness synopsis must be evicted first"
        );
    }

    /// Online ingestion end to end: a materialized sample goes stale as its
    /// base table grows past the staleness bound; the tuner's refresh action
    /// absorbs the appended rows *before* planning, so the next query reuses
    /// the refreshed synopsis instead of rebuilding — and its estimate covers
    /// the grown table.
    #[test]
    fn appends_trigger_staleness_refresh_and_reuse() {
        let eng = engine(50_000);
        let first = eng.execute_sql(Q).unwrap();
        let id = first.created_synopses[0];
        let second = eng.execute_sql(Q).unwrap();
        assert!(second.reused_synopses.contains(&id));
        assert_eq!(eng.synopsis_refreshes(), 0);

        // Grow orders by 50% — far past the default max_staleness (0.2).
        let orders = eng.catalog.table("orders").unwrap();
        orders.append(&orders_delta(50_000, 75_000)).unwrap();
        assert_eq!(orders.num_rows(), 75_000);
        assert!(
            eng.metadata().get(id).unwrap().staleness(75_000) > eng.config.max_staleness,
            "the materialized sample must now be stale"
        );

        let third = eng.execute_sql(Q).unwrap();
        assert!(
            eng.synopsis_refreshes() >= 1,
            "the stale synopsis must be refreshed, not rebuilt"
        );
        assert!(
            third.reused_synopses.contains(&id),
            "the refreshed synopsis must be matched again: {}",
            third.plan_description
        );
        assert_eq!(
            third.result.metrics.base_rows_scanned, 0,
            "reuse of the refreshed synopsis must not rescan the base table"
        );
        let meta = eng.metadata().get(id).unwrap().clone();
        assert_eq!(meta.rows_at_build, Some(75_000), "snapshot covers the growth");
        assert!(meta.refresh_count >= 1);

        // The refreshed estimate tracks the *grown* table, not the old one.
        let exact_plan = parse_query(Q)
            .unwrap()
            .to_exact_plan(&eng.catalog)
            .unwrap();
        let exact = execute(&exact_plan, &ExecutionContext::new(eng.catalog.clone())).unwrap();
        let (err, missed) = third.result.error_vs(&exact);
        assert_eq!(missed, 0);
        assert!(err < 0.15, "relative error vs grown-table exact: {err}");
    }

    /// Refresh goes through the lease/graveyard machinery: an in-flight plan
    /// that leased the pre-refresh payload keeps reading its snapshot, while
    /// by-id reads resolve to the refreshed copy.
    #[test]
    fn refresh_preserves_leased_snapshot_for_inflight_plans() {
        let eng = engine(30_000);
        let first = eng.execute_sql(Q).unwrap();
        let id = first.created_synopses[0];
        let lease = eng.store().lease(id).expect("materialized sample");
        let (before, _) = lease.sample().unwrap();

        let orders = eng.catalog.table("orders").unwrap();
        orders.append(&orders_delta(30_000, 45_000)).unwrap();
        assert!(eng.refresh_synopsis(id), "grown table must refresh");
        assert!(!eng.refresh_synopsis(id), "second refresh is a no-op");

        let (snapshot, _) = lease.sample().unwrap();
        assert!(
            Arc::ptr_eq(&before, &snapshot),
            "the lease must pin the pre-refresh payload"
        );
        assert_eq!(snapshot.source_rows, 30_000);
        let (live, _) = eng.store().sample(id).expect("live refreshed copy");
        assert_eq!(live.source_rows, 45_000, "by-id reads see the refresh");
        drop(lease);
        let (live, _) = eng.store().sample(id).unwrap();
        assert_eq!(live.source_rows, 45_000, "live copy survives lease drop");
    }

    /// `execute_sql` takes `&self`: a trivial smoke test that two threads can
    /// share one engine without any external synchronization. (The full
    /// determinism soak lives in `tests/concurrent_engine.rs`.)
    #[test]
    fn engine_is_shareable_across_threads() {
        let eng = engine(20_000);
        std::thread::scope(|scope| {
            let e = &eng;
            let handles: Vec<_> = (0..2)
                .map(|_| scope.spawn(move || e.execute_sql(Q).unwrap().result.num_groups()))
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 5);
            }
        });
        assert_eq!(eng.queries_executed(), 2);
    }

    fn lt(column: &str, value: i64) -> Expr {
        Expr::binary(Expr::col(column), BinaryOp::Lt, Expr::Literal(Value::Int(value)))
    }

    fn exact(eng: &TasterEngine, sql: &str) -> QueryResult {
        let plan = taster_engine::parse_query(sql)
            .unwrap()
            .to_exact_plan(&eng.catalog)
            .unwrap();
        execute(&plan, &ExecutionContext::new(eng.catalog.clone())).unwrap()
    }

    #[test]
    fn delete_where_stays_within_error_spec_after_heavy_deletes() {
        let eng = engine(50_000);
        let _ = eng.execute_sql(Q).unwrap();

        let report = eng.delete_where("orders", &[lt("o_id", 20_000)]).unwrap();
        assert_eq!(report.rows_affected, 20_000);
        let table = eng.catalog.table("orders").unwrap();
        assert!(table.deletes_logged() > 0);
        assert_eq!(table.snapshot().live_rows(), 30_000);

        // Deleting the same range again is an idempotent no-op.
        let again = eng.delete_where("orders", &[lt("o_id", 20_000)]).unwrap();
        assert_eq!(again.rows_affected, 0);

        // The next approximate answer must track the *live* exact answer —
        // the synopsis either got tombstone-corrected in place or rebuilt
        // from live rows by the staleness-driven refresh.
        let approx = eng.execute_sql(Q).unwrap();
        let reference = exact(&eng, Q);
        let (err, missed) = approx.result.error_vs(&reference);
        assert_eq!(missed, 0, "no groups may be missed after deletes");
        assert!(err < 0.15, "relative error after 40% deletes: {err}");
    }

    #[test]
    fn delete_where_reweights_covering_uniform_samples_in_place() {
        let eng = engine(30_000);
        let report = eng
            .add_offline_hint(
                "orders",
                OfflineStrategy::Variational { fraction: 0.05 },
                None,
            )
            .unwrap();
        let id = report.synopsis_id;

        eng.delete_where("orders", &[lt("o_id", 15_000)]).unwrap();

        // The pinned uniform sample's weight-sum now targets the live count.
        let (sample, _) = eng.store().sample(id).expect("hint stays pinned");
        let live = eng.catalog.table("orders").unwrap().snapshot().live_rows() as f64;
        let est = sample.estimated_source_rows();
        assert!(
            (est - live).abs() / live < 1e-9,
            "weight-sum {est} must be rescaled to live rows {live}"
        );
    }

    #[test]
    fn update_where_rewrites_matching_rows() {
        let eng = engine(10_000);
        let report = eng
            .update_where(
                "orders",
                &[("o_price".to_string(), Value::Float(5.0))],
                &[lt("o_id", 10)],
            )
            .unwrap();
        assert_eq!(report.rows_affected, 10);
        // The ten rewritten rows each carry the new price...
        let sum = exact(&eng, "SELECT SUM(o_price) FROM orders WHERE o_id < 10");
        assert_eq!(sum.groups[0].aggregates[0].value, 50.0);
        // ...and nothing else changed: total live rows are preserved.
        let count = exact(&eng, "SELECT COUNT(*) FROM orders");
        assert_eq!(count.groups[0].aggregates[0].value, 10_000.0);

        // Updates with no assignments are a planning error.
        assert!(eng.update_where("orders", &[], &[]).is_err());
    }

    #[test]
    fn compaction_never_changes_answers_and_drops_dead_rows() {
        let eng = engine(40_000);
        eng.delete_where("orders", &[lt("o_id", 16_000)]).unwrap();
        let before = exact(&eng, Q);

        let reports = eng.compact_now().unwrap();
        let orders_report = reports
            .iter()
            .find(|(n, _)| n == "orders")
            .map(|(_, r)| *r)
            .expect("40% dead rows must trigger compaction");
        assert!(orders_report.rows_dropped > 0);
        assert!(orders_report.partitions_compacted > 0);

        let after = exact(&eng, Q);
        let (err, missed) = after.error_vs(&before);
        assert_eq!(missed, 0);
        assert_eq!(err, 0.0, "compaction changed an exact answer");

        // A second sweep finds nothing left to do.
        assert!(eng.compact_now().unwrap().is_empty());
    }

    #[test]
    fn background_compactor_sweeps_and_stops() {
        let eng = Arc::new(engine(40_000));
        eng.delete_where("orders", &[lt("o_id", 16_000)]).unwrap();
        let mut handle = eng.start_background_compactor(std::time::Duration::from_millis(5));
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            // Compaction physically drops the fully-dead partitions, so the
            // physical row count shrinks (partitions under the dead-fraction
            // threshold legitimately keep their few tombstones).
            let snapshot = eng.catalog.table("orders").unwrap().snapshot();
            if snapshot.num_rows() < 40_000 {
                break;
            }
            assert!(Instant::now() < deadline, "compactor never swept");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        // Stopping twice (and the eventual Drop) are no-ops.
        handle.stop();
        let reference = exact(&eng, Q);
        assert_eq!(reference.num_groups(), 5);
    }
}
