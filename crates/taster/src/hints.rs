//! User hints: offline pre-construction of pinned synopses (Section V).
//!
//! When the user can predict part of the workload, Taster builds the
//! corresponding synopses offline, pins them in the warehouse (the tuner
//! never deletes them) and keeps tuning the remaining space online. The
//! offline builder supports plain stratified samples and the VerdictDB-style
//! scramble + variational subsampling used by the Fig. 7 experiment.

use taster_engine::sql::ErrorSpec;
use taster_engine::{EngineError, SampleMethod, SynopsisPayload};
use taster_storage::Catalog;
use taster_synopses::{StratifiedSampler, VariationalSample};

use crate::synopsis::{SynopsisDescriptor, SynopsisKind};

/// How an offline (hinted) sample should be built.
#[derive(Debug, Clone)]
pub enum OfflineStrategy {
    /// Per-group stratified sample with a row cap per group.
    Stratified {
        /// Stratification attributes.
        stratification: Vec<String>,
        /// Maximum rows kept per group.
        rows_per_group: usize,
    },
    /// VerdictDB-style variational subsampling: a scrambled clone of the
    /// table followed by a uniform sample partitioned into subsamples.
    Variational {
        /// Sampling fraction.
        fraction: f64,
    },
}

/// The outcome of an offline build: the payload to store, its descriptor
/// template, and the work performed (so the harness can charge it to the
/// offline bars of Fig. 3 / Fig. 7).
#[derive(Debug)]
pub struct OfflineBuild {
    /// The descriptor to register (id 0; the caller re-ids it).
    pub descriptor: SynopsisDescriptor,
    /// The materialized payload.
    pub payload: SynopsisPayload,
    /// Base-table rows read while building.
    pub rows_scanned: usize,
    /// Rows written while scrambling (0 for stratified builds).
    pub rows_scrambled: usize,
}

/// Build an offline sample of `table` using the given strategy.
pub fn build_offline_sample(
    catalog: &Catalog,
    table: &str,
    strategy: &OfflineStrategy,
    accuracy: ErrorSpec,
    seed: u64,
) -> Result<OfflineBuild, EngineError> {
    let t = catalog.table(table)?;
    match strategy {
        OfflineStrategy::Stratified {
            stratification,
            rows_per_group,
        } => {
            let mut sampler =
                StratifiedSampler::new(stratification.clone(), *rows_per_group, seed);
            let sample = sampler.sample_partitions(t.snapshot().partitions())?;
            let bytes = sample.size_bytes();
            let rows = sample.len();
            let fingerprint = format!(
                "offline-stratified({table};{})",
                stratification.join(",")
            );
            Ok(OfflineBuild {
                descriptor: SynopsisDescriptor {
                    id: 0,
                    fingerprint,
                    base_tables: vec![table.to_string()],
                    kind: SynopsisKind::Sample {
                        method: SampleMethod::Distinct {
                            stratification: stratification.clone(),
                            delta: *rows_per_group,
                            probability: 1.0,
                        },
                    },
                    accuracy,
                    estimated_bytes: bytes,
                    estimated_rows: rows,
                    pinned: true,
                },
                payload: SynopsisPayload::Sample(sample),
                rows_scanned: t.num_rows(),
                rows_scrambled: 0,
            })
        }
        OfflineStrategy::Variational { fraction } => {
            let vs = VariationalSample::build(t.snapshot().partitions(), *fraction, 0, seed)?;
            let bytes = vs.sample.size_bytes();
            let rows = vs.sample.len();
            let scramble_rows = vs.scramble_rows;
            let fingerprint = format!("offline-variational({table};{fraction})");
            Ok(OfflineBuild {
                descriptor: SynopsisDescriptor {
                    id: 0,
                    fingerprint,
                    base_tables: vec![table.to_string()],
                    kind: SynopsisKind::Sample {
                        method: SampleMethod::Uniform {
                            probability: *fraction,
                        },
                    },
                    accuracy,
                    estimated_bytes: bytes,
                    estimated_rows: rows,
                    pinned: true,
                },
                payload: SynopsisPayload::Sample(vs.sample),
                rows_scanned: t.num_rows(),
                rows_scrambled: scramble_rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let t = BatchBuilder::new()
            .column("g", (0..10_000i64).map(|i| i % 20).collect::<Vec<_>>())
            .column("v", (0..10_000).map(|i| i as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("facts", t, 4).unwrap());
        cat
    }

    #[test]
    fn stratified_offline_build_is_pinned_and_covers_groups() {
        let cat = catalog();
        let build = build_offline_sample(
            &cat,
            "facts",
            &OfflineStrategy::Stratified {
                stratification: vec!["g".into()],
                rows_per_group: 25,
            },
            ErrorSpec::default(),
            1,
        )
        .unwrap();
        assert!(build.descriptor.pinned);
        assert_eq!(build.rows_scanned, 10_000);
        assert_eq!(build.rows_scrambled, 0);
        match &build.payload {
            SynopsisPayload::Sample(s) => assert_eq!(s.len(), 20 * 25),
            _ => panic!("expected a sample payload"),
        }
    }

    #[test]
    fn variational_offline_build_reports_scramble_cost() {
        let cat = catalog();
        let build = build_offline_sample(
            &cat,
            "facts",
            &OfflineStrategy::Variational { fraction: 0.05 },
            ErrorSpec::default(),
            2,
        )
        .unwrap();
        assert_eq!(build.rows_scrambled, 10_000);
        match &build.payload {
            SynopsisPayload::Sample(s) => {
                assert!(s.len() > 300 && s.len() < 800, "sample size {}", s.len())
            }
            _ => panic!("expected a sample payload"),
        }
    }

    #[test]
    fn unknown_table_is_an_error() {
        let cat = catalog();
        assert!(build_offline_sample(
            &cat,
            "missing",
            &OfflineStrategy::Variational { fraction: 0.1 },
            ErrorSpec::default(),
            0,
        )
        .is_err());
    }
}
