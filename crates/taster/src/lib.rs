//! Taster: self-tuning, elastic and online approximate query processing.
//!
//! This crate is the reproduction of the paper's core contribution
//! (Sections III–V):
//!
//! * [`planner`] — the cost-based planner that generates candidate logical
//!   plans with synopsis operators injected below aggregations, pushes them
//!   towards the raw data, configures them (uniform vs. distinct sampling,
//!   sketch-join eligibility) to satisfy the query's accuracy requirement,
//!   and matches query subplans to materialized synopses,
//! * [`metadata`] — the synopsis-centric metadata store holding the logical
//!   definition, accuracy, materialization state and recent usefulness of
//!   every synopsis the planner has ever proposed,
//! * [`store`] — the in-memory synopsis buffer and the persistent synopsis
//!   warehouse, both subject to byte quotas,
//! * [`tuner`] — the cost:utility tuner that selects which plan to execute
//!   and which synopses to keep under the space quota, using the
//!   submodular-greedy algorithm over a sliding window of recent queries,
//!   with adaptive window length and storage elasticity,
//! * [`hints`] — user hints: offline pre-construction of pinned synopses
//!   (including VerdictDB-style variational samples),
//! * [`engine`] — [`engine::TasterEngine`], the façade tying everything
//!   together: parse → plan → tune → execute → materialize byproducts,
//! * [`coalesce`] — build coalescing for racing sessions: concurrent builds
//!   of the same synopsis id collapse into one, losers lease the winner's
//!   payload,
//! * [`persist`] — WAL-backed durability: table appends and warehouse
//!   synopses are logged write-ahead, so [`TasterEngine::recover`] restarts a
//!   crashed engine warm (answering from recovered synopses, no rebuilds).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cardinality;
pub mod coalesce;
pub mod config;
pub mod engine;
pub mod hints;
pub mod matching;
pub mod metadata;
pub mod persist;
pub mod planner;
pub mod store;
pub mod synopsis;
pub mod tuner;

pub use cardinality::{CardinalityCache, SynopsisCardinality};
pub use coalesce::{BuildTicket, Coalescer};
pub use config::TasterConfig;
pub use engine::{
    CompactorHandle, MutationReport, RecoveryReport, TasterEngine, TasterResult,
};
pub use persist::Durability;
pub use metadata::MetadataStore;
pub use planner::{CandidatePlan, Planner};
pub use store::SynopsisStore;
pub use synopsis::{SynopsisDescriptor, SynopsisId, SynopsisKind};
pub use tuner::Tuner;
