//! Matching query subplans to materialized synopses (Section IV-A).
//!
//! A stored synopsis can replace a query subplan when (i) it summarizes the
//! same base relation, (ii) its stratification attributes are a superset of
//! the attributes the query needs covered, (iii) it was built for an accuracy
//! requirement at least as strict as the current query's, (iv) it retains
//! at least as many rows (pass-through probability ≥ what the current query
//! needs), and (v) it is **fresh enough**: under online ingestion the base
//! table keeps growing, and a synopsis that has never seen more than a
//! bounded fraction of the current rows
//! ([`SampleRequirement::max_staleness`]) is not a match — the query falls
//! back to building a fresh synopsis (or the exact plan) and the tuner's
//! refresh action brings the stale one up to date. Mismatching filters are
//! handled by adding a residual filter on top of the synopsis scan, so they
//! do not participate in the match itself.

use taster_engine::sql::ErrorSpec;
use taster_engine::SampleMethod;

use crate::metadata::MetadataStore;
use crate::store::{SynopsisLease, SynopsisStore};
use crate::synopsis::{SynopsisId, SynopsisKind};

/// What a query needs from a reusable sample of `table`.
#[derive(Debug, Clone)]
pub struct SampleRequirement {
    /// The summarized base relation.
    pub table: String,
    /// Attributes that must be covered by stratification.
    pub stratification: Vec<String>,
    /// The query's accuracy requirement.
    pub accuracy: ErrorSpec,
    /// The minimum pass-through probability the query needs to meet its
    /// accuracy target.
    pub min_probability: f64,
    /// Rows the base table holds *now* (the planner reads this off the
    /// table's current snapshot); staleness is judged against it.
    pub table_rows: usize,
    /// Maximum tolerated staleness (fraction of current rows the synopsis
    /// has not seen); from [`crate::config::TasterConfig::max_staleness`].
    pub max_staleness: f64,
}

/// Find a materialized sample satisfying the requirement. Returns a lease on
/// the best match (the one retaining the fewest rows while still satisfying
/// the requirement, i.e. the cheapest to read); the lease keeps the synopsis
/// readable until the matched plan has run, even if the tuner evicts it in
/// the meantime.
pub fn find_sample_match(
    metadata: &MetadataStore,
    store: &SynopsisStore,
    req: &SampleRequirement,
) -> Option<SynopsisLease> {
    let mut best: Option<(SynopsisId, f64)> = None;
    for meta in metadata.by_index_key(&req.table) {
        let id = meta.descriptor.id;
        if store.location(id).is_none() {
            continue;
        }
        let SynopsisKind::Sample { method } = &meta.descriptor.kind else {
            continue;
        };
        if !stratification_covers(&meta.descriptor.stratification(), &req.stratification) {
            continue;
        }
        if meta.descriptor.accuracy.relative_error > req.accuracy.relative_error + 1e-12 {
            continue;
        }
        // Both halves of the ErrorSpec must be at least as strict as the
        // query's: a sample built for 90% confidence cannot answer a
        // 99%-confidence query even if its relative-error bound is tighter.
        if meta.descriptor.accuracy.confidence + 1e-12 < req.accuracy.confidence {
            continue;
        }
        if method.probability() + 1e-12 < req.min_probability {
            continue;
        }
        // Staleness bound: a synopsis blind to too many of the table's
        // current rows cannot answer for them, however accurate it was at
        // build time.
        if meta.staleness(req.table_rows) > req.max_staleness + 1e-12 {
            continue;
        }
        let p = method.probability();
        match best {
            Some((_, best_p)) if best_p <= p => {}
            _ => best = Some((id, p)),
        }
    }
    // The lease can still fail if a concurrent session evicted the synopsis
    // between the scan above and here; the match is then simply dropped.
    best.and_then(|(id, _)| store.lease(id))
}

/// Find a materialized sketch-join over `table` keyed on exactly
/// `key_columns` and carrying `value_column` (or carrying a value column when
/// only COUNT is needed — a SUM-carrying sketch also answers COUNT). The
/// sketch must be no staler than `max_staleness` against the table's current
/// `table_rows`. Returns a lease, like [`find_sample_match`].
pub fn find_sketch_match(
    metadata: &MetadataStore,
    store: &SynopsisStore,
    table: &str,
    key_columns: &[String],
    value_column: &Option<String>,
    table_rows: usize,
    max_staleness: f64,
) -> Option<SynopsisLease> {
    let index_key = format!("{}|{}", table, key_columns.join(","));
    for meta in metadata.by_index_key(&index_key) {
        let id = meta.descriptor.id;
        if store.location(id).is_none() {
            continue;
        }
        if meta.staleness(table_rows) > max_staleness + 1e-12 {
            continue;
        }
        let SynopsisKind::SketchJoin {
            table: t,
            key_columns: k,
            value_column: v,
        } = &meta.descriptor.kind
        else {
            continue;
        };
        if t != table || k != key_columns {
            continue;
        }
        let value_ok = match (value_column, v) {
            (None, _) => true,
            (Some(need), Some(have)) => need == have,
            (Some(_), None) => false,
        };
        if value_ok {
            if let Some(lease) = store.lease(id) {
                return Some(lease);
            }
        }
    }
    None
}

/// `true` if the stored stratification attribute set covers the required one.
pub fn stratification_covers(stored: &[String], required: &[String]) -> bool {
    required.iter().all(|c| stored.contains(c))
}

/// `true` when `method` retains at least as much data as `other` needs — used
/// to decide whether an existing *candidate* (not yet built) can be widened
/// rather than registering a new one.
pub fn method_subsumes(stored: &SampleMethod, required: &SampleMethod) -> bool {
    stratification_covers(stored.stratification(), required.stratification())
        && stored.probability() + 1e-12 >= required.probability()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::SynopsisDescriptor;
    use taster_engine::SynopsisPayload;
    use taster_storage::batch::BatchBuilder;
    use taster_synopses::WeightedSample;

    fn add_sample(
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        table: &str,
        strat: Vec<String>,
        probability: f64,
        error: f64,
        materialize: bool,
    ) -> SynopsisId {
        add_sample_conf(metadata, store, table, strat, probability, error, 0.95, materialize)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_sample_conf(
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        table: &str,
        strat: Vec<String>,
        probability: f64,
        error: f64,
        confidence: f64,
        materialize: bool,
    ) -> SynopsisId {
        let id = metadata.allocate_id();
        let method = SampleMethod::Distinct {
            stratification: strat,
            delta: 10,
            probability,
        };
        let fp = format!("sample-{id}");
        let id = metadata.register(SynopsisDescriptor {
            id,
            fingerprint: fp,
            base_tables: vec![table.to_string()],
            kind: SynopsisKind::Sample { method },
            accuracy: ErrorSpec {
                relative_error: error,
                confidence,
            },
            estimated_bytes: 100,
            estimated_rows: 10,
            pinned: false,
        });
        if materialize {
            let rows = BatchBuilder::new()
                .column("x", vec![1i64, 2])
                .build()
                .unwrap();
            store.insert_into_buffer(
                id,
                &SynopsisPayload::Sample(WeightedSample {
                    rows,
                    weights: vec![1.0, 1.0],
                    stratification: vec![],
                    probability,
                    source_rows: 2,
                }),
                false,
            );
        }
        id
    }

    fn req(table: &str, strat: &[&str], error: f64, p: f64) -> SampleRequirement {
        req_conf(table, strat, error, 0.95, p)
    }

    fn req_conf(
        table: &str,
        strat: &[&str],
        error: f64,
        confidence: f64,
        p: f64,
    ) -> SampleRequirement {
        SampleRequirement {
            table: table.into(),
            stratification: strat.iter().map(|s| s.to_string()).collect(),
            accuracy: ErrorSpec {
                relative_error: error,
                confidence,
            },
            min_probability: p,
            table_rows: 1_000,
            max_staleness: 0.2,
        }
    }

    /// Id of a sample match, if any (the tests reason about identity, not
    /// lifetime, so the lease is dropped immediately).
    fn match_id(
        metadata: &MetadataStore,
        store: &SynopsisStore,
        r: &SampleRequirement,
    ) -> Option<SynopsisId> {
        find_sample_match(metadata, store, r).map(|lease| lease.id())
    }

    #[test]
    fn match_requires_materialization() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        add_sample(&mut md, &store, "t", vec!["g".into()], 0.1, 0.1, false);
        assert!(find_sample_match(&md, &store, &req("t", &["g"], 0.1, 0.05)).is_none());
        let id = add_sample(&mut md, &store, "t", vec!["g".into()], 0.1, 0.1, true);
        assert_eq!(match_id(&md, &store, &req("t", &["g"], 0.1, 0.05)), Some(id));
    }

    #[test]
    fn match_checks_stratification_superset_and_accuracy() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let wide = add_sample(
            &mut md,
            &store,
            "t",
            vec!["g".into(), "h".into()],
            0.2,
            0.05,
            true,
        );
        // Needs only g: the wider sample matches.
        assert_eq!(match_id(&md, &store, &req("t", &["g"], 0.1, 0.1)), Some(wide));
        // Needs a column the sample is not stratified on: no match.
        assert!(find_sample_match(&md, &store, &req("t", &["z"], 0.1, 0.1)).is_none());
        // Needs stricter accuracy than the sample was built for: no match.
        assert!(find_sample_match(&md, &store, &req("t", &["g"], 0.01, 0.1)).is_none());
        // Needs a higher probability than the sample retains: no match.
        assert!(find_sample_match(&md, &store, &req("t", &["g"], 0.1, 0.5)).is_none());
    }

    #[test]
    fn match_checks_confidence_half_of_error_spec() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        // Built for 90% confidence: tighter relative error than anything the
        // queries below ask for, but the confidence is the weaker half.
        let low_conf = add_sample_conf(
            &mut md,
            &store,
            "t",
            vec!["g".into()],
            0.2,
            0.05,
            0.90,
            true,
        );
        // A 99%-confidence query must NOT be served by the 90% sample.
        assert!(
            find_sample_match(&md, &store, &req_conf("t", &["g"], 0.1, 0.99, 0.1)).is_none(),
            "a 90%-confidence sample must not satisfy a 99%-confidence query"
        );
        // A query at or below the stored confidence matches fine.
        assert_eq!(
            match_id(&md, &store, &req_conf("t", &["g"], 0.1, 0.90, 0.1)),
            Some(low_conf)
        );
        // A stricter (higher-confidence) sample serves a laxer query.
        let high_conf = add_sample_conf(
            &mut md,
            &store,
            "t",
            vec!["g".into(), "h".into()],
            0.2,
            0.05,
            0.99,
            true,
        );
        assert_eq!(
            match_id(&md, &store, &req_conf("t", &["g", "h"], 0.1, 0.95, 0.1)),
            Some(high_conf)
        );
    }

    #[test]
    fn best_match_is_the_cheapest_sufficient_one() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let small = add_sample(&mut md, &store, "t", vec!["g".into()], 0.05, 0.1, true);
        let _large = add_sample(&mut md, &store, "t", vec!["g".into()], 0.5, 0.1, true);
        assert_eq!(match_id(&md, &store, &req("t", &["g"], 0.1, 0.01)), Some(small));
    }

    #[test]
    fn sketch_matching_requires_same_keys_and_value() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let id = md.allocate_id();
        let id = md.register(SynopsisDescriptor {
            id,
            fingerprint: "sk".into(),
            base_tables: vec!["orders".into()],
            kind: SynopsisKind::SketchJoin {
                table: "orders".into(),
                key_columns: vec!["o_cust".into()],
                value_column: Some("o_price".into()),
            },
            accuracy: ErrorSpec::default(),
            estimated_bytes: 100,
            estimated_rows: 10,
            pinned: false,
        });
        let sk = taster_synopses::SketchJoin::new(
            vec!["o_cust".into()],
            Some("o_price".into()),
            0.01,
            0.01,
        );
        store.insert_into_warehouse(id, &SynopsisPayload::Sketch(sk), false);

        let keys = vec!["o_cust".to_string()];
        assert_eq!(
            find_sketch_match(&md, &store, "orders", &keys, &Some("o_price".into()), 0, 0.2)
                .map(|l| l.id()),
            Some(id)
        );
        // COUNT-only requirement is satisfied by a SUM-carrying sketch.
        assert_eq!(
            find_sketch_match(&md, &store, "orders", &keys, &None, 0, 0.2).map(|l| l.id()),
            Some(id)
        );
        // Different value column: no match.
        assert!(find_sketch_match(&md, &store, "orders", &keys, &Some("o_tax".into()), 0, 0.2).is_none());
        // Different keys: no match.
        assert!(
            find_sketch_match(&md, &store, "orders", &["o_id".to_string()], &None, 0, 0.2).is_none()
        );
    }

    /// The staleness half of matching: a synopsis whose build snapshot covers
    /// too small a fraction of the table's current rows is not a match, even
    /// when every accuracy/stratification/probability condition holds.
    #[test]
    fn stale_synopses_are_not_matched() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let id = add_sample(&mut md, &store, "t", vec!["g".into()], 0.1, 0.05, true);
        // Built when the table had 800 rows.
        md.set_build_snapshot(id, 800);

        let mut r = req("t", &["g"], 0.1, 0.05);
        r.max_staleness = 0.2;
        // Table still at 900 rows: staleness 1 − 800/900 ≈ 0.11 ≤ 0.2.
        r.table_rows = 900;
        assert_eq!(match_id(&md, &store, &r), Some(id));
        // Table grew to 1200 rows: staleness 1 − 800/1200 ≈ 0.33 > 0.2.
        r.table_rows = 1_200;
        assert!(find_sample_match(&md, &store, &r).is_none());
        // A refresh (new build snapshot) makes it matchable again.
        md.record_refresh(id, 1_200);
        assert_eq!(match_id(&md, &store, &r), Some(id));
        assert_eq!(md.get(id).unwrap().refresh_count, 1);
        // A plain rebuild (same fingerprint, new build snapshot) is not a
        // refresh.
        md.set_build_snapshot(id, 1_300);
        assert_eq!(md.get(id).unwrap().refresh_count, 1);
        // A synopsis with no recorded snapshot (static-table legacy path)
        // reports zero staleness and keeps matching.
        let legacy = add_sample(&mut md, &store, "u", vec!["g".into()], 0.1, 0.05, true);
        let mut r = req("u", &["g"], 0.1, 0.05);
        r.table_rows = usize::MAX;
        assert_eq!(match_id(&md, &store, &r), Some(legacy));
    }

    #[test]
    fn stale_sketches_are_not_matched() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let id = md.allocate_id();
        let id = md.register(SynopsisDescriptor {
            id,
            fingerprint: "sk-stale".into(),
            base_tables: vec!["orders".into()],
            kind: SynopsisKind::SketchJoin {
                table: "orders".into(),
                key_columns: vec!["k".into()],
                value_column: None,
            },
            accuracy: ErrorSpec::default(),
            estimated_bytes: 100,
            estimated_rows: 10,
            pinned: false,
        });
        let sk = taster_synopses::SketchJoin::new(vec!["k".into()], None, 0.01, 0.01);
        store.insert_into_warehouse(id, &SynopsisPayload::Sketch(sk), false);
        md.set_build_snapshot(id, 500);
        let keys = vec!["k".to_string()];
        assert!(
            find_sketch_match(&md, &store, "orders", &keys, &None, 550, 0.2).is_some(),
            "within the staleness bound"
        );
        assert!(
            find_sketch_match(&md, &store, "orders", &keys, &None, 1_000, 0.2).is_none(),
            "staler than the bound"
        );
    }

    #[test]
    fn method_subsumption() {
        let wide = SampleMethod::Distinct {
            stratification: vec!["a".into(), "b".into()],
            delta: 10,
            probability: 0.2,
        };
        let narrow = SampleMethod::Distinct {
            stratification: vec!["a".into()],
            delta: 10,
            probability: 0.1,
        };
        assert!(method_subsumes(&wide, &narrow));
        assert!(!method_subsumes(&narrow, &wide));
    }
}
