//! WAL-backed durability for the synopsis warehouse and the cold tier.
//!
//! [`Durability`] composes the storage crate's primitives — the CRC-framed
//! group-commit [`Wal`] and the page/blob [`Pager`] — into the persistence
//! protocol [`crate::TasterEngine`] uses when opened in persistent mode:
//!
//! * **Table appends** are logged write-ahead: `Durability` implements
//!   [`AppendSink`], so every [`taster_storage::Table::append`] commits a
//!   `TableAppend` record (batch inline) *before* the new snapshot publishes.
//! * **Checkpoints** spill every table's sealed partitions to pager blobs and
//!   commit one self-contained `Checkpoint` record; on replay a checkpoint
//!   resets the table to exactly that state, superseding earlier appends.
//! * **Warehouse synopses** are persisted by diff: after every query the
//!   engine hands the current warehouse residents to
//!   [`sync_warehouse`](Durability::sync_warehouse), which writes payload
//!   blobs + `SynopsisUpsert` records for new/changed entries, `SynopsisEvict`
//!   for departed ones, and a `TunerCheckpoint` when the tuner state moved —
//!   all under **one** group commit (one fsync).
//!
//! The commit protocol is blob-first: payload blobs are written and synced
//! *before* the WAL commit that references them, so a crash can at worst
//! leave unreferenced pages, never a referenced-but-torn blob. Replaying any
//! WAL prefix therefore always yields a valid published state — recovery is
//! idempotent.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;
use taster_engine::sql::ErrorSpec;
use taster_engine::{SampleMethod, SynopsisPayload};
use taster_storage::codec::{decode_batch, encode_batch};
use taster_storage::table::AppendSink;
use taster_storage::{
    BlobRef, ByteReader, ByteWriter, Catalog, Pager, RecordBatch, SelectionMask, StorageError,
    Vfs, Wal,
};
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::WeightedSample;

use crate::synopsis::{SynopsisDescriptor, SynopsisId, SynopsisKind};

/// WAL record kinds (the commit marker `0xC0` is owned by the WAL itself).
const KIND_TABLE_APPEND: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;
const KIND_SYNOPSIS_UPSERT: u8 = 3;
const KIND_SYNOPSIS_EVICT: u8 = 4;
const KIND_TUNER: u8 = 5;
const KIND_TABLE_DELETE: u8 = 6;
const KIND_TABLE_REWRITE: u8 = 7;

/// Payload-blob kind tags.
const PAYLOAD_SAMPLE: u8 = 0;
const PAYLOAD_SKETCH: u8 = 1;

/// Tuner/counter state carried by a `TunerCheckpoint` record, so a recovered
/// engine resumes with the adapted window (and its history) instead of
/// re-learning it from scratch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TunerState {
    /// Current tuner window length `w`.
    pub window: usize,
    /// History of window lengths (the Fig. 8 series).
    pub history: Vec<usize>,
    /// Queries admitted so far (drives the deterministic seed schedule).
    pub queries_executed: u64,
    /// Incremental refreshes performed so far.
    pub refreshes: u64,
}

/// A shared handle to a live payload (no deep copy on the sync path — the
/// store already hands payloads out as `Arc`s).
pub enum PayloadRef {
    /// A weighted sample.
    Sample(Arc<WeightedSample>),
    /// A sketch-join summary.
    Sketch(Arc<SketchJoin>),
}

/// One synopsis as the engine wants it persisted: metadata plus the live
/// payload. Produced by the engine's warehouse walk, consumed by
/// [`Durability::sync_warehouse`].
pub struct SynopsisSnapshot {
    /// Synopsis id.
    pub id: SynopsisId,
    /// Logical definition.
    pub descriptor: SynopsisDescriptor,
    /// Materialized size in bytes.
    pub actual_bytes: usize,
    /// Base rows the payload covers.
    pub rows_at_build: Option<usize>,
    /// The base table's mutation (delete) counter at build/refresh time.
    pub deletes_at_build: u64,
    /// Incremental refreshes applied so far.
    pub refresh_count: usize,
    /// `true` for user-pinned synopses.
    pub pinned: bool,
    /// The payload to serialize.
    pub payload: PayloadRef,
}

/// A synopsis reconstructed from the log during recovery.
pub struct RecoveredSynopsis {
    /// Synopsis id.
    pub id: SynopsisId,
    /// Logical definition.
    pub descriptor: SynopsisDescriptor,
    /// Materialized size in bytes.
    pub actual_bytes: usize,
    /// Base rows the payload covers.
    pub rows_at_build: Option<usize>,
    /// The base table's mutation (delete) counter at build/refresh time.
    pub deletes_at_build: u64,
    /// Incremental refreshes applied before the crash.
    pub refresh_count: usize,
    /// `true` for user-pinned synopses.
    pub pinned: bool,
    /// The decoded payload.
    pub payload: SynopsisPayload,
}

/// One logged mutation replayed after the last checkpoint/rewrite, in commit
/// order. Deletes carry the physical global positions they were logged
/// against; replaying ops in order keeps those positions meaningful.
pub enum RecoveredOp {
    /// An appended batch.
    Append(RecordBatch),
    /// Deleted physical row positions (sorted, deduplicated at log time).
    Delete(Vec<usize>),
}

/// A table reconstructed from the log: the partitions (and tombstones) of its
/// last checkpoint or rewrite, plus every append/delete committed after it,
/// in order.
pub struct RecoveredTable {
    /// Table name.
    pub name: String,
    /// Partition seal size the table was created with.
    pub seal_rows: usize,
    /// Checkpointed partitions (empty when the table was never checkpointed).
    pub partitions: Vec<RecordBatch>,
    /// Per-partition tombstone masks, parallel to `partitions`.
    pub tombstones: Vec<Option<SelectionMask>>,
    /// The table's mutation counter at checkpoint time.
    pub deletes_logged: u64,
    /// Post-checkpoint mutations, oldest first.
    pub ops: Vec<RecoveredOp>,
}

/// Everything a WAL replay reconstructed, handed to the engine's recovery.
pub struct Replayed {
    /// Tables, in first-seen order.
    pub tables: Vec<RecoveredTable>,
    /// Surviving synopses (latest upsert wins, evicts applied).
    pub synopses: Vec<RecoveredSynopsis>,
    /// Latest tuner checkpoint, if any.
    pub tuner: Option<TunerState>,
    /// Committed records applied during replay.
    pub records_applied: usize,
    /// `true` if a torn tail was truncated while opening the log.
    pub tore: bool,
}

/// What the durability layer remembers about a persisted synopsis — the diff
/// key for [`Durability::sync_warehouse`] plus the blob for page accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PersistedMeta {
    actual_bytes: usize,
    rows_at_build: Option<usize>,
    deletes_at_build: u64,
    refresh_count: usize,
    blob: BlobRef,
}

/// The durability layer: one WAL + one page store per engine directory.
pub struct Durability {
    pager: Pager,
    wal: Mutex<Wal>,
    /// Synopses currently durable, keyed by id — the diff baseline.
    persisted: Mutex<HashMap<SynopsisId, PersistedMeta>>,
    /// Last tuner state committed, to skip redundant checkpoints.
    last_tuner: Mutex<Option<TunerState>>,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("pager", &self.pager)
            .field("persisted", &self.persisted.lock().len())
            .finish_non_exhaustive()
    }
}

impl Durability {
    /// Open (creating if absent) the durability files under `dir` —
    /// `wal.log` and `pages.dat` — replaying any existing log. The returned
    /// [`Replayed`] holds the reconstructed state; the `Durability` itself is
    /// armed with the surviving synopses as its diff baseline.
    pub fn open(vfs: &dyn Vfs, dir: &Path) -> Result<(Self, Replayed), StorageError> {
        let pager = Pager::open(vfs, &dir.join("pages.dat"))?;
        let (wal, replay) = Wal::open(vfs, &dir.join("wal.log"))?;

        let mut tables: Vec<RecoveredTable> = Vec::new();
        let mut synopses: HashMap<SynopsisId, (RecoveredSynopsis, PersistedMeta)> = HashMap::new();
        let mut tuner: Option<TunerState> = None;
        let records_applied = replay.records.len();

        for record in &replay.records {
            let mut r = ByteReader::new(&record.payload);
            match record.kind {
                KIND_TABLE_APPEND => {
                    let name = r.get_str()?;
                    let batch = decode_batch(&mut r)?;
                    match tables.iter_mut().find(|t| t.name == name) {
                        Some(t) => t.ops.push(RecoveredOp::Append(batch)),
                        None => tables.push(RecoveredTable {
                            name,
                            // Never checkpointed: adopt the first append's
                            // size as the seal bound (the engine checkpoints
                            // on open, so this is a crash-between path).
                            seal_rows: batch.num_rows().max(1),
                            partitions: Vec::new(),
                            tombstones: Vec::new(),
                            deletes_logged: 0,
                            ops: vec![RecoveredOp::Append(batch)],
                        }),
                    }
                }
                KIND_TABLE_DELETE => {
                    let name = r.get_str()?;
                    let n = r.get_u32()? as usize;
                    let mut positions = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        positions.push(usize::try_from(r.get_u64()?).map_err(|_| {
                            StorageError::Corrupt("delete position overflows usize".to_string())
                        })?);
                    }
                    // A delete against a table the log knows nothing about
                    // (no checkpoint, no append) has nothing to apply to;
                    // recovery would skip the table anyway.
                    if let Some(t) = tables.iter_mut().find(|t| t.name == name) {
                        t.ops.push(RecoveredOp::Delete(positions));
                    }
                }
                KIND_CHECKPOINT => {
                    let ntables = r.get_u32()? as usize;
                    for _ in 0..ntables {
                        let state = decode_table_state(&mut r, &pager)?;
                        apply_table_state(&mut tables, state);
                    }
                }
                KIND_TABLE_REWRITE => {
                    let state = decode_table_state(&mut r, &pager)?;
                    apply_table_state(&mut tables, state);
                }
                KIND_SYNOPSIS_UPSERT => {
                    let (rec, meta) = decode_synopsis_upsert(&mut r, &pager)?;
                    synopses.insert(rec.id, (rec, meta));
                }
                KIND_SYNOPSIS_EVICT => {
                    let id = r.get_u64()?;
                    synopses.remove(&id);
                }
                KIND_TUNER => {
                    tuner = Some(decode_tuner(&mut r)?);
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "unknown WAL record kind {other}"
                    )));
                }
            }
        }

        let mut persisted = HashMap::with_capacity(synopses.len());
        let mut survivors = Vec::with_capacity(synopses.len());
        for (id, (rec, meta)) in synopses {
            persisted.insert(id, meta);
            survivors.push(rec);
        }
        survivors.sort_by_key(|s| s.id);

        Ok((
            Self {
                pager,
                wal: Mutex::new(wal),
                persisted: Mutex::new(persisted),
                last_tuner: Mutex::new(tuner.clone()),
            },
            Replayed {
                tables,
                synopses: survivors,
                tuner,
                records_applied,
                tore: replay.tore,
            },
        ))
    }

    /// Total pages read through the underlying pager (recovery blob reads and
    /// any later cold reads) — the measured cold-tier I/O.
    pub fn pages_read(&self) -> u64 {
        self.pager.pages_read()
    }

    /// Pages the persisted payload of synopsis `id` occupies, or 0 when the
    /// synopsis is not durable. Queries that reuse a warehouse synopsis in
    /// persistent mode are charged this measured figure instead of the
    /// simulated byte model.
    pub fn pages_for_synopsis(&self, id: SynopsisId) -> u64 {
        self.persisted
            .lock()
            .get(&id)
            .map(|m| self.pager.pages_for(m.blob.len))
            .unwrap_or(0)
    }

    /// Ids of all synopses currently durable (tests and diagnostics).
    pub fn persisted_ids(&self) -> Vec<SynopsisId> {
        let mut ids: Vec<SynopsisId> = self.persisted.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Forget a synopsis from the diff baseline without logging (used when
    /// recovery rejects a stale entry: the follow-up
    /// [`sync_warehouse`](Self::sync_warehouse) then records the eviction).
    pub fn drop_from_baseline(&self, id: SynopsisId) {
        self.persisted.lock().remove(&id);
    }

    /// Spill every table's current snapshot to pager blobs and commit one
    /// self-contained `Checkpoint` record. On replay this record resets each
    /// named table, superseding all earlier appends — it is both the cold-tier
    /// spill path and the log-compaction point.
    pub fn checkpoint_tables(&self, catalog: &Catalog) -> Result<(), StorageError> {
        let mut names = catalog.table_names();
        names.sort();
        let mut payload = ByteWriter::new();
        payload.put_u32(names.len() as u32);
        for name in &names {
            let table = catalog.table(name)?;
            let snapshot = table.snapshot();
            encode_table_state(
                &mut payload,
                &self.pager,
                name,
                table.seal_rows(),
                snapshot.partitions(),
                snapshot.tombstones(),
                table.deletes_logged(),
            )?;
        }
        // Blob-first commit protocol: partitions are durable before the
        // record referencing them.
        self.pager.sync()?;
        let mut wal = self.wal.lock();
        wal.append(KIND_CHECKPOINT, &payload.into_bytes())?;
        wal.commit()
    }

    /// Diff the current warehouse residents (plus tuner state) against what
    /// is already durable and commit exactly the delta: upserts for
    /// new/changed synopses, evicts for departed ones, a tuner checkpoint
    /// when the tuner moved. One group commit; a no-op diff costs no fsync.
    pub fn sync_warehouse(
        &self,
        residents: &[SynopsisSnapshot],
        tuner: TunerState,
    ) -> Result<(), StorageError> {
        let mut persisted = self.persisted.lock();
        let mut upserts: Vec<(SynopsisId, Vec<u8>, PersistedMeta)> = Vec::new();
        let mut blobs_written = false;

        for snap in residents {
            let current = persisted.get(&snap.id);
            let changed = match current {
                None => true,
                Some(m) => {
                    m.actual_bytes != snap.actual_bytes
                        || m.rows_at_build != snap.rows_at_build
                        || m.deletes_at_build != snap.deletes_at_build
                        || m.refresh_count != snap.refresh_count
                }
            };
            if !changed {
                continue;
            }
            let mut bytes = ByteWriter::new();
            match &snap.payload {
                PayloadRef::Sample(s) => {
                    bytes.put_u8(PAYLOAD_SAMPLE);
                    s.encode_into(&mut bytes);
                }
                PayloadRef::Sketch(sk) => {
                    bytes.put_u8(PAYLOAD_SKETCH);
                    sk.encode_into(&mut bytes);
                }
            }
            let blob = self.pager.write_blob(&bytes.into_bytes())?;
            blobs_written = true;
            let meta = PersistedMeta {
                actual_bytes: snap.actual_bytes,
                rows_at_build: snap.rows_at_build,
                deletes_at_build: snap.deletes_at_build,
                refresh_count: snap.refresh_count,
                blob,
            };
            let mut record = ByteWriter::new();
            encode_synopsis_upsert(&mut record, snap, blob);
            upserts.push((snap.id, record.into_bytes(), meta));
        }

        let resident_ids: std::collections::HashSet<SynopsisId> =
            residents.iter().map(|s| s.id).collect();
        let evicts: Vec<SynopsisId> = persisted
            .keys()
            .filter(|id| !resident_ids.contains(id))
            .copied()
            .collect();

        let mut last_tuner = self.last_tuner.lock();
        let tuner_changed = last_tuner.as_ref() != Some(&tuner);

        if upserts.is_empty() && evicts.is_empty() && !tuner_changed {
            return Ok(());
        }

        if blobs_written {
            self.pager.sync()?;
        }
        let mut wal = self.wal.lock();
        for (_, record, _) in &upserts {
            wal.append(KIND_SYNOPSIS_UPSERT, record)?;
        }
        for id in &evicts {
            let mut record = ByteWriter::new();
            record.put_u64(*id);
            wal.append(KIND_SYNOPSIS_EVICT, &record.into_bytes())?;
        }
        if tuner_changed {
            let mut record = ByteWriter::new();
            encode_tuner(&mut record, &tuner);
            wal.append(KIND_TUNER, &record.into_bytes())?;
        }
        wal.commit()?;

        // Only a successful commit moves the baseline: a failed sync leaves
        // the diff pending so the next call retries it.
        for (id, _, meta) in upserts {
            persisted.insert(id, meta);
        }
        for id in evicts {
            persisted.remove(&id);
        }
        *last_tuner = Some(tuner);
        Ok(())
    }
}

impl AppendSink for Durability {
    fn log_append(&self, table: &str, batch: &RecordBatch) -> Result<(), StorageError> {
        let mut payload = ByteWriter::new();
        payload.put_str(table);
        encode_batch(&mut payload, batch);
        let mut wal = self.wal.lock();
        wal.append(KIND_TABLE_APPEND, &payload.into_bytes())?;
        wal.commit()
    }

    fn log_delete(&self, table: &str, positions: &[usize]) -> Result<(), StorageError> {
        let mut payload = ByteWriter::new();
        payload.put_str(table);
        payload.put_u32(positions.len() as u32);
        for &p in positions {
            payload.put_u64(p as u64);
        }
        let mut wal = self.wal.lock();
        wal.append(KIND_TABLE_DELETE, &payload.into_bytes())?;
        wal.commit()
    }

    fn log_rewrite(
        &self,
        table: &str,
        seal_rows: usize,
        partitions: &[Arc<RecordBatch>],
        tombstones: &[Option<Arc<SelectionMask>>],
        deletes_logged: u64,
    ) -> Result<(), StorageError> {
        let mut payload = ByteWriter::new();
        encode_table_state(
            &mut payload,
            &self.pager,
            table,
            seal_rows,
            partitions,
            tombstones,
            deletes_logged,
        )?;
        // Blob-first, like checkpoints: the rewritten partitions are durable
        // before the record referencing them.
        self.pager.sync()?;
        let mut wal = self.wal.lock();
        wal.append(KIND_TABLE_REWRITE, &payload.into_bytes())?;
        wal.commit()
    }
}

/// Serialize one table's full physical state (partitions spilled to pager
/// blobs, tombstone masks inline) — the shared body of `Checkpoint` and
/// `TableRewrite` records.
fn encode_table_state(
    payload: &mut ByteWriter,
    pager: &Pager,
    name: &str,
    seal_rows: usize,
    partitions: &[Arc<RecordBatch>],
    tombstones: &[Option<Arc<SelectionMask>>],
    deletes_logged: u64,
) -> Result<(), StorageError> {
    payload.put_str(name);
    payload.put_u64(seal_rows as u64);
    payload.put_u32(partitions.len() as u32);
    for (i, part) in partitions.iter().enumerate() {
        let mut bytes = ByteWriter::new();
        encode_batch(&mut bytes, part);
        let blob = pager.write_blob(&bytes.into_bytes())?;
        blob.encode(payload);
        match tombstones.get(i).and_then(|t| t.as_deref()) {
            Some(mask) if !mask.is_none_selected() => {
                payload.put_bool(true);
                let words = mask.words();
                payload.put_u32(words.len() as u32);
                for &word in words {
                    payload.put_u64(word);
                }
            }
            _ => payload.put_bool(false),
        }
    }
    payload.put_u64(deletes_logged);
    Ok(())
}

/// Decoded counterpart of [`encode_table_state`].
struct TableState {
    name: String,
    seal_rows: usize,
    partitions: Vec<RecordBatch>,
    tombstones: Vec<Option<SelectionMask>>,
    deletes_logged: u64,
}

fn decode_table_state(r: &mut ByteReader, pager: &Pager) -> Result<TableState, StorageError> {
    let name = r.get_str()?;
    let seal_rows = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("seal_rows overflows usize".to_string()))?;
    let nparts = r.get_u32()? as usize;
    let mut partitions = Vec::with_capacity(nparts.min(4096));
    let mut tombstones = Vec::with_capacity(nparts.min(4096));
    for _ in 0..nparts {
        let blob = BlobRef::decode(r)?;
        let bytes = pager.read_blob(blob)?;
        let batch = decode_batch(&mut ByteReader::new(&bytes))?;
        let mask = if r.get_bool()? {
            let nwords = r.get_u32()? as usize;
            let mut words = Vec::with_capacity(nwords.min(1 << 20));
            for _ in 0..nwords {
                words.push(r.get_u64()?);
            }
            Some(SelectionMask::from_words(words, batch.num_rows())?)
        } else {
            None
        };
        partitions.push(batch);
        tombstones.push(mask);
    }
    let deletes_logged = r.get_u64()?;
    Ok(TableState {
        name,
        seal_rows,
        partitions,
        tombstones,
        deletes_logged,
    })
}

/// A checkpoint/rewrite *resets* the table: earlier ops are folded into the
/// recorded physical state; later ops replay on top of it.
fn apply_table_state(tables: &mut Vec<RecoveredTable>, state: TableState) {
    match tables.iter_mut().find(|t| t.name == state.name) {
        Some(t) => {
            t.seal_rows = state.seal_rows;
            t.partitions = state.partitions;
            t.tombstones = state.tombstones;
            t.deletes_logged = state.deletes_logged;
            t.ops.clear();
        }
        None => tables.push(RecoveredTable {
            name: state.name,
            seal_rows: state.seal_rows,
            partitions: state.partitions,
            tombstones: state.tombstones,
            deletes_logged: state.deletes_logged,
            ops: Vec::new(),
        }),
    }
}

fn encode_sample_method(w: &mut ByteWriter, method: &SampleMethod) {
    match method {
        SampleMethod::Uniform { probability } => {
            w.put_u8(0);
            w.put_f64(*probability);
        }
        SampleMethod::Distinct {
            stratification,
            delta,
            probability,
        } => {
            w.put_u8(1);
            w.put_u32(stratification.len() as u32);
            for s in stratification {
                w.put_str(s);
            }
            w.put_u64(*delta as u64);
            w.put_f64(*probability);
        }
    }
}

fn decode_sample_method(r: &mut ByteReader) -> Result<SampleMethod, StorageError> {
    match r.get_u8()? {
        0 => Ok(SampleMethod::Uniform {
            probability: r.get_f64()?,
        }),
        1 => {
            let n = r.get_u32()? as usize;
            let mut stratification = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                stratification.push(r.get_str()?);
            }
            let delta = usize::try_from(r.get_u64()?)
                .map_err(|_| StorageError::Corrupt("delta overflows usize".to_string()))?;
            let probability = r.get_f64()?;
            Ok(SampleMethod::Distinct {
                stratification,
                delta,
                probability,
            })
        }
        tag => Err(StorageError::Corrupt(format!(
            "unknown sample method tag {tag}"
        ))),
    }
}

fn encode_kind(w: &mut ByteWriter, kind: &SynopsisKind) {
    match kind {
        SynopsisKind::Sample { method } => {
            w.put_u8(0);
            encode_sample_method(w, method);
        }
        SynopsisKind::SketchJoin {
            table,
            key_columns,
            value_column,
        } => {
            w.put_u8(1);
            w.put_str(table);
            w.put_u32(key_columns.len() as u32);
            for k in key_columns {
                w.put_str(k);
            }
            match value_column {
                Some(v) => {
                    w.put_bool(true);
                    w.put_str(v);
                }
                None => w.put_bool(false),
            }
        }
    }
}

fn decode_kind(r: &mut ByteReader) -> Result<SynopsisKind, StorageError> {
    match r.get_u8()? {
        0 => Ok(SynopsisKind::Sample {
            method: decode_sample_method(r)?,
        }),
        1 => {
            let table = r.get_str()?;
            let n = r.get_u32()? as usize;
            let mut key_columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                key_columns.push(r.get_str()?);
            }
            let value_column = if r.get_bool()? {
                Some(r.get_str()?)
            } else {
                None
            };
            Ok(SynopsisKind::SketchJoin {
                table,
                key_columns,
                value_column,
            })
        }
        tag => Err(StorageError::Corrupt(format!(
            "unknown synopsis kind tag {tag}"
        ))),
    }
}

fn encode_descriptor(w: &mut ByteWriter, d: &SynopsisDescriptor) {
    w.put_u64(d.id);
    w.put_str(&d.fingerprint);
    w.put_u32(d.base_tables.len() as u32);
    for t in &d.base_tables {
        w.put_str(t);
    }
    encode_kind(w, &d.kind);
    w.put_f64(d.accuracy.relative_error);
    w.put_f64(d.accuracy.confidence);
    w.put_u64(d.estimated_bytes as u64);
    w.put_u64(d.estimated_rows as u64);
    w.put_bool(d.pinned);
}

fn decode_descriptor(r: &mut ByteReader) -> Result<SynopsisDescriptor, StorageError> {
    let id = r.get_u64()?;
    let fingerprint = r.get_str()?;
    let n = r.get_u32()? as usize;
    let mut base_tables = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        base_tables.push(r.get_str()?);
    }
    let kind = decode_kind(r)?;
    let accuracy = ErrorSpec {
        relative_error: r.get_f64()?,
        confidence: r.get_f64()?,
    };
    let estimated_bytes = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("estimated_bytes overflows usize".to_string()))?;
    let estimated_rows = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("estimated_rows overflows usize".to_string()))?;
    let pinned = r.get_bool()?;
    Ok(SynopsisDescriptor {
        id,
        fingerprint,
        base_tables,
        kind,
        accuracy,
        estimated_bytes,
        estimated_rows,
        pinned,
    })
}

fn encode_synopsis_upsert(w: &mut ByteWriter, snap: &SynopsisSnapshot, blob: BlobRef) {
    w.put_u64(snap.id);
    encode_descriptor(w, &snap.descriptor);
    w.put_u64(snap.actual_bytes as u64);
    match snap.rows_at_build {
        Some(rows) => {
            w.put_bool(true);
            w.put_u64(rows as u64);
        }
        None => w.put_bool(false),
    }
    w.put_u64(snap.deletes_at_build);
    w.put_u64(snap.refresh_count as u64);
    w.put_bool(snap.pinned);
    blob.encode(w);
}

fn decode_synopsis_upsert(
    r: &mut ByteReader,
    pager: &Pager,
) -> Result<(RecoveredSynopsis, PersistedMeta), StorageError> {
    let id = r.get_u64()?;
    let descriptor = decode_descriptor(r)?;
    let actual_bytes = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("actual_bytes overflows usize".to_string()))?;
    let rows_at_build = if r.get_bool()? {
        Some(usize::try_from(r.get_u64()?).map_err(|_| {
            StorageError::Corrupt("rows_at_build overflows usize".to_string())
        })?)
    } else {
        None
    };
    let deletes_at_build = r.get_u64()?;
    let refresh_count = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("refresh_count overflows usize".to_string()))?;
    let pinned = r.get_bool()?;
    let blob = BlobRef::decode(r)?;

    let bytes = pager.read_blob(blob)?;
    let mut pr = ByteReader::new(&bytes);
    let payload = match pr.get_u8()? {
        PAYLOAD_SAMPLE => SynopsisPayload::Sample(WeightedSample::decode_from(&mut pr)?),
        PAYLOAD_SKETCH => SynopsisPayload::Sketch(SketchJoin::decode_from(&mut pr)?),
        tag => {
            return Err(StorageError::Corrupt(format!(
                "unknown payload kind tag {tag}"
            )))
        }
    };
    Ok((
        RecoveredSynopsis {
            id,
            descriptor,
            actual_bytes,
            rows_at_build,
            deletes_at_build,
            refresh_count,
            pinned,
            payload,
        },
        PersistedMeta {
            actual_bytes,
            rows_at_build,
            deletes_at_build,
            refresh_count,
            blob,
        },
    ))
}

fn encode_tuner(w: &mut ByteWriter, t: &TunerState) {
    w.put_u64(t.window as u64);
    w.put_u32(t.history.len() as u32);
    for &h in &t.history {
        w.put_u64(h as u64);
    }
    w.put_u64(t.queries_executed);
    w.put_u64(t.refreshes);
}

fn decode_tuner(r: &mut ByteReader) -> Result<TunerState, StorageError> {
    let window = usize::try_from(r.get_u64()?)
        .map_err(|_| StorageError::Corrupt("window overflows usize".to_string()))?;
    let n = r.get_u32()? as usize;
    let mut history = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        history.push(usize::try_from(r.get_u64()?).map_err(|_| {
            StorageError::Corrupt("window history entry overflows usize".to_string())
        })?);
    }
    let queries_executed = r.get_u64()?;
    let refreshes = r.get_u64()?;
    Ok(TunerState {
        window,
        history,
        queries_executed,
        refreshes,
    })
}
