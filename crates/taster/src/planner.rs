//! The cost-based planner (Section IV).
//!
//! For every query the planner produces the exact plan plus a set of
//! candidate approximate plans:
//!
//! 1. **Sample injection** — a synopsis operator is injected below the
//!    aggregation and pushed down onto the aggregation-side base relation
//!    (the FROM table of the benchmark queries), *below* that relation's
//!    filters, so the resulting sample summarizes the raw relation and is
//!    maximally reusable. The stratification set is derived from the rules of
//!    Section IV-A: grouping attributes on the relation, join keys on the
//!    relation, and filter attributes whose value distribution is skewed.
//!    The sampler type (uniform vs. distinct) and its probability are
//!    configured from the table statistics and the query's accuracy
//!    requirement.
//! 2. **Sample reuse** — if the metadata store knows a *materialized* sample
//!    that subsumes the required one, a plan scanning that synopsis (plus a
//!    residual filter) replaces the base-table scan entirely.
//! 3. **Sketch-join** — when the eligibility conditions of Section IV-A hold
//!    (the aggregation input comes from one join side, the grouping and
//!    filter attributes from the other), a sketch-join plan is produced,
//!    either building the sketch during the query or reusing a materialized
//!    one.
//!
//! All candidates are costed with the engine's [`CostEstimator`]; every
//! candidate synopsis (built or not) is registered in the metadata store so
//! the tuner can reason about it later.

use std::collections::HashMap;

use taster_engine::cost::{CostEstimator, SynopsisCostHint};
use taster_engine::sql::{ErrorSpec, SelectQuery};
use taster_engine::{
    EngineError, Expr, LogicalPlan, SampleMethod, SketchRef,
};
use taster_storage::{Catalog, IoModel};
use taster_synopses::estimator::required_probability;

use crate::config::TasterConfig;
use crate::matching::{find_sample_match, find_sketch_match, SampleRequirement};
use crate::metadata::{MetadataStore, PlanAlternative};
use crate::store::{SynopsisLease, SynopsisStore};
use crate::synopsis::{SynopsisDescriptor, SynopsisId, SynopsisKind};

/// One candidate (approximate) plan.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The executable logical plan.
    pub plan: LogicalPlan,
    /// Materialized synopses the plan reads.
    pub uses: Vec<SynopsisId>,
    /// Synopses the plan will build as byproducts.
    pub creates: Vec<SynopsisId>,
    /// Estimated cost in simulated nanoseconds.
    pub cost_ns: f64,
    /// Estimated cost of answering the *same* query once the synopses this
    /// plan creates are materialized (equal to `cost_ns` for pure-reuse
    /// plans). This is the number the metadata store records so the tuner
    /// can value a synopsis by the queries it would speed up in the future —
    /// exactly the "estimated cost when this synopsis exists" of Section III.
    pub future_cost_ns: f64,
    /// The plan shape used to compute `future_cost_ns` (None for plans that
    /// create nothing).
    pub future_plan: Option<LogicalPlan>,
    /// Human-readable description (for logging / EXPLAIN).
    pub description: String,
    /// Leases on every synopsis in `uses`, taken at match time. Holding the
    /// planner output through execution guarantees the matched synopses stay
    /// readable even if a tuner (this session's or a concurrent one) evicts
    /// them between planning and execution.
    pub leases: Vec<SynopsisLease>,
}

/// Planner output for one query.
#[derive(Debug, Clone)]
pub struct PlannerOutput {
    /// The parsed query.
    pub query: SelectQuery,
    /// The best exact plan.
    pub exact_plan: LogicalPlan,
    /// Its estimated cost.
    pub exact_cost_ns: f64,
    /// All approximate candidates (possibly empty for non-approximable
    /// queries).
    pub candidates: Vec<CandidatePlan>,
}

impl PlannerOutput {
    /// Plan alternatives in the form the metadata store's query log expects.
    pub fn alternatives(&self) -> Vec<PlanAlternative> {
        self.candidates
            .iter()
            .map(|c| PlanAlternative {
                synopses: c
                    .uses
                    .iter()
                    .chain(c.creates.iter())
                    .copied()
                    .collect(),
                cost_ns: c.future_cost_ns,
            })
            .collect()
    }
}

/// The Taster planner.
#[derive(Debug)]
pub struct Planner {
    config: TasterConfig,
    io_model: IoModel,
}

impl Planner {
    /// Create a planner with the given configuration and cost model.
    pub fn new(config: TasterConfig, io_model: IoModel) -> Self {
        Self { config, io_model }
    }

    /// Generate the exact plan and all approximate candidates for a query,
    /// registering candidate synopses in the metadata store.
    pub fn plan(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
    ) -> Result<PlannerOutput, EngineError> {
        let exact_plan = query.to_exact_plan(catalog)?;
        let estimator = self.estimator(catalog, metadata, store);
        let exact_cost_ns = estimator.cost(&exact_plan)?;

        let mut candidates = Vec::new();
        if query.is_approximable() {
            self.add_sample_candidates(query, catalog, metadata, store, &mut candidates)?;
            self.add_sketch_candidates(query, catalog, metadata, store, &mut candidates)?;
        }

        // Re-cost candidates with up-to-date hints (sizes of newly registered
        // synopses are estimates; materialized ones use actual sizes).
        let estimator = self.estimator(catalog, metadata, store);
        for c in &mut candidates {
            c.cost_ns = estimator.cost(&c.plan)?;
            c.future_cost_ns = match &c.future_plan {
                Some(p) => estimator.cost(p)?,
                None => c.cost_ns,
            };
        }

        Ok(PlannerOutput {
            query: query.clone(),
            exact_plan,
            exact_cost_ns,
            candidates,
        })
    }

    fn estimator<'a>(
        &self,
        catalog: &'a Catalog,
        metadata: &MetadataStore,
        store: &SynopsisStore,
    ) -> CostEstimator<'a> {
        let mut hints = HashMap::new();
        for id in metadata.synopsis_ids() {
            if let Some(meta) = metadata.get(id) {
                hints.insert(
                    id,
                    SynopsisCostHint {
                        rows: meta.descriptor.estimated_rows,
                        bytes: store.size_of(id).unwrap_or_else(|| meta.size_bytes()),
                        location: store.location(id),
                    },
                );
            }
        }
        CostEstimator::new(catalog, self.io_model).with_hints(hints)
    }

    // -----------------------------------------------------------------
    // Sample-based candidates
    // -----------------------------------------------------------------

    fn add_sample_candidates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        out: &mut Vec<CandidatePlan>,
    ) -> Result<(), EngineError> {
        // The aggregation-side relation of the benchmark queries is the FROM
        // table (the fact table); samples summarize it.
        let fact = query.from.clone();
        let fact_table = catalog.table(&fact)?;
        let stats = fact_table.stats();
        let accuracy = self.accuracy(query);

        // Stratification set (push-down rules of Section IV-A): grouping
        // attributes on the fact table, join keys on the fact side, and
        // skewed filter attributes on the fact table.
        let mut stratification: Vec<String> = Vec::new();
        for g in &query.group_by {
            if fact_table.schema().contains(g) {
                stratification.push(g.clone());
            }
        }
        // Join keys on the fact side are stratified on only when they have
        // few distinct values. For foreign-key joins against a complete
        // dimension table (the dominant shape in the benchmarks), every fact
        // row matches regardless of which rows the sampler keeps, so
        // guaranteeing δ rows per (near-unique) key would degenerate into
        // keeping the whole table; the planner instead relies on the
        // dimension side being complete — the same reasoning that lets
        // Quickr push samplers below such joins.
        let join_key_cardinality_cap = (fact_table.num_rows() / 100).max(64);
        for join in &query.joins {
            for (a, b) in &join.conditions {
                let key = if fact_table.schema().contains(a) {
                    Some(a)
                } else if fact_table.schema().contains(b) {
                    Some(b)
                } else {
                    None
                };
                if let Some(key) = key {
                    if stats.distinct_count(key) <= join_key_cardinality_cap {
                        stratification.push(key.clone());
                    }
                }
            }
        }
        // Filter attributes on the fact table join the stratification set
        // only when their value distribution is skewed *and* they have few
        // distinct values — stratifying on a near-unique column (a date or a
        // key) would force the sampler to keep essentially every row.
        for pred in &query.predicates {
            for col in pred.referenced_columns() {
                if fact_table.schema().contains(&col)
                    && stats.is_skewed(&col)
                    && stats.distinct_count(&col) <= join_key_cardinality_cap
                {
                    stratification.push(col);
                }
            }
        }
        stratification.sort();
        stratification.dedup();

        // Configure the sampler to satisfy the accuracy requirement. The
        // sample must leave enough rows in every *output* group, which is
        // determined by the grouping attributes wherever they live (fact or
        // dimension side), further thinned by the query's filters.
        let strat_groups = stats.distinct_combinations(&stratification).max(1);
        let mut output_groups = 1usize;
        for g in &query.group_by {
            for table_name in query.tables() {
                if let Ok(t) = catalog.table(&table_name) {
                    if t.schema().contains(g) {
                        output_groups = output_groups.saturating_mul(t.stats().distinct_count(g).max(1));
                        break;
                    }
                }
            }
        }
        // Accuracy is governed by the rows left in every *output* group (the
        // stratification keys only drive the coverage guarantee δ of the
        // distinct sampler). Each predicate roughly halves the rows
        // contributing to a group; be conservative and size the sample for
        // the thinned groups.
        let groups = output_groups.min(fact_table.num_rows().max(1)).max(1);
        let predicate_inflation = 2usize.pow(query.predicates.len().min(2) as u32);
        let rows_per_group = (fact_table.num_rows() / groups / predicate_inflation).max(1);
        // For SUM/COUNT under Bernoulli sampling the relative error scales
        // with sqrt(1 + cv²)/sqrt(n), not cv/sqrt(n); AVG-only queries can use
        // the plain cv.
        let cv = self.aggregate_cv(query, &stats).unwrap_or(1.0);
        let sum_like = query
            .aggregates()
            .iter()
            .any(|a| matches!(a.func, taster_engine::AggFunc::Sum | taster_engine::AggFunc::Count));
        let cv_effective = if sum_like { (1.0 + cv * cv).sqrt() } else { cv };
        let probability = required_probability(
            rows_per_group,
            cv_effective,
            accuracy.relative_error,
            accuracy.confidence,
            self.config.min_rows_per_group,
        );
        // Quantize the probability onto a coarse grid (rounding up, so the
        // accuracy requirement is still met). Queries of the same template
        // whose randomized predicates lead to slightly different probabilities
        // then map to the *same* synopsis, which is what makes cross-query
        // reuse effective.
        let probability = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
            .into_iter()
            .find(|&g| g + 1e-12 >= probability)
            .unwrap_or(1.0);

        if std::env::var("TASTER_DEBUG_PLANNER").is_ok() {
            eprintln!(
                "[planner] fact={fact} strat={stratification:?} strat_groups={strat_groups} \
                 output_groups={output_groups} rows_per_group={rows_per_group} cv={cv:.3} \
                 cv_eff={cv_effective:.3} p={probability:.4}"
            );
        }
        // "Taster generates a plan without samplers if stratification and
        // accuracy requirements are so restrictive that they cannot be
        // satisfied with a reasonable sampling probability."
        if probability > 0.8 {
            return Ok(());
        }

        let use_uniform = stratification.is_empty()
            || (probability <= self.config.uniform_probability_threshold
                && probability * rows_per_group as f64
                    >= 2.0 * self.config.min_rows_per_group as f64);
        let method = if use_uniform {
            SampleMethod::Uniform { probability }
        } else {
            SampleMethod::Distinct {
                stratification: stratification.clone(),
                delta: self.config.min_rows_per_group,
                probability,
            }
        };

        // Register the candidate synopsis (deduplicated by fingerprint).
        let raw_scan = LogicalPlan::Scan {
            table: fact.clone(),
            filter: None,
            projection: None,
        };
        // The probability participates in the synopsis identity: a denser
        // sample of the same relation/stratification is a different synopsis
        // (and can serve queries that need the sparser one).
        let sample_fingerprint = format!(
            "p{probability:.2}:{}",
            LogicalPlan::Sample {
                method: method.clone(),
                synopsis_id: 0,
                input: Box::new(raw_scan.clone()),
            }
            .fingerprint()
        );
        let estimated_rows = (fact_table.num_rows() as f64 * probability) as usize
            + self.config.min_rows_per_group * groups;
        let estimated_bytes = ((fact_table.size_bytes() as f64) * probability * 1.1) as usize
            + estimated_rows * 8;
        let provisional_id = metadata.allocate_id();
        let synopsis_id = metadata.register(SynopsisDescriptor {
            id: provisional_id,
            fingerprint: sample_fingerprint,
            base_tables: vec![fact.clone()],
            kind: SynopsisKind::Sample {
                method: method.clone(),
            },
            accuracy,
            estimated_bytes,
            estimated_rows,
            pinned: false,
        });

        // Candidate A: build the sample during this query (online injection).
        let fact_predicates = self.fact_predicates(query, catalog)?;
        let create_plan = self.build_plan_with_fact_input(
            query,
            catalog,
            LogicalPlan::Sample {
                method: method.clone(),
                synopsis_id,
                input: Box::new(raw_scan),
            },
            fact_predicates.clone(),
        )?;
        let future_plan = self.build_plan_with_fact_input(
            query,
            catalog,
            LogicalPlan::SynopsisScan {
                id: synopsis_id,
                filter: None,
            },
            fact_predicates.clone(),
        )?;
        out.push(CandidatePlan {
            plan: create_plan,
            uses: vec![],
            creates: vec![synopsis_id],
            cost_ns: 0.0,
            future_cost_ns: 0.0,
            future_plan: Some(future_plan),
            description: format!(
                "online {} sample of {fact} (p={probability:.4}, strat=[{}])",
                if use_uniform { "uniform" } else { "distinct" },
                stratification.join(",")
            ),
            leases: vec![],
        });

        // Candidate B: reuse a materialized sample that subsumes this one.
        // The coverage requirement follows the sampler the planner itself
        // chose: when a uniform sample satisfies the query (all groups large
        // enough), any sufficiently dense sample matches; when the query
        // needs stratification, the stored sample must cover those attributes.
        let requirement = SampleRequirement {
            table: fact.clone(),
            stratification: method.stratification().to_vec(),
            accuracy,
            min_probability: probability,
            table_rows: fact_table.num_rows(),
            max_staleness: self.config.max_staleness,
        };
        if let Some(lease) = find_sample_match(metadata, store, &requirement) {
            let existing = lease.id();
            let reuse_plan = self.build_plan_with_fact_input(
                query,
                catalog,
                LogicalPlan::SynopsisScan {
                    id: existing,
                    filter: None,
                },
                fact_predicates,
            )?;
            out.push(CandidatePlan {
                plan: reuse_plan,
                uses: vec![existing],
                creates: vec![],
                cost_ns: 0.0,
                future_cost_ns: 0.0,
                future_plan: None,
                description: format!("reuse materialized sample {existing} of {fact}"),
                leases: vec![lease],
            });
        }
        Ok(())
    }

    /// Coefficient of variation of the first approximable aggregate's input
    /// column on the fact table, if known.
    fn aggregate_cv(
        &self,
        query: &SelectQuery,
        stats: &taster_storage::stats::TableStats,
    ) -> Option<f64> {
        for agg in query.aggregates() {
            if let Some(col) = &agg.column {
                if let Some(cs) = stats.column(col) {
                    if let Some(cv) = cs.coefficient_of_variation() {
                        return Some(cv.max(0.2));
                    }
                }
            }
        }
        None
    }

    fn accuracy(&self, query: &SelectQuery) -> ErrorSpec {
        query.error_spec.unwrap_or(ErrorSpec {
            relative_error: self.config.default_relative_error,
            confidence: self.config.default_confidence,
        })
    }

    /// Predicates that reference only fact-table columns (to be applied above
    /// the sample), and the rest (left to the generic builder below).
    pub fn fact_predicates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
    ) -> Result<Vec<Expr>, EngineError> {
        let fact = catalog.table(&query.from)?;
        Ok(query
            .predicates
            .iter()
            .filter(|p| {
                p.referenced_columns()
                    .iter()
                    .all(|c| fact.schema().contains(c))
            })
            .cloned()
            .collect())
    }

    /// Build the full query plan but with `fact_input` in place of the plain
    /// fact-table scan: fact predicates are applied directly above the fact
    /// input, joins and remaining predicates follow, and the aggregation tops
    /// the plan.
    pub fn build_plan_with_fact_input(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        fact_input: LogicalPlan,
        fact_predicates: Vec<Expr>,
    ) -> Result<LogicalPlan, EngineError> {
        let fact = catalog.table(&query.from)?;
        let mut plan = fact_input;
        for pred in &fact_predicates {
            plan = LogicalPlan::Filter {
                predicate: pred.clone(),
                input: Box::new(plan),
            };
        }
        for join in &query.joins {
            let right_table = catalog.table(&join.table)?;
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for (a, b) in &join.conditions {
                if right_table.schema().contains(b) {
                    left_keys.push(a.clone());
                    right_keys.push(b.clone());
                } else if right_table.schema().contains(a) {
                    left_keys.push(b.clone());
                    right_keys.push(a.clone());
                } else {
                    return Err(EngineError::Plan(format!(
                        "join condition {a} = {b} does not reference table {}",
                        join.table
                    )));
                }
            }
            // Push the joined table's own predicates into its scan.
            let right_preds: Vec<Expr> = query
                .predicates
                .iter()
                .filter(|p| {
                    p.referenced_columns()
                        .iter()
                        .all(|c| right_table.schema().contains(c))
                })
                .cloned()
                .collect();
            let right_filter = right_preds.into_iter().reduce(Expr::and);
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.clone(),
                    filter: right_filter,
                    projection: None,
                }),
                left_keys,
                right_keys,
            };
        }
        // Predicates referencing neither side alone (cross-table arithmetic)
        // or columns not on the fact table nor any single dimension are rare
        // in the benchmark templates; apply whatever is left above the joins.
        for pred in &query.predicates {
            let cols = pred.referenced_columns();
            let on_fact = cols.iter().all(|c| fact.schema().contains(c));
            let on_some_dim = query.joins.iter().any(|j| {
                catalog
                    .table(&j.table)
                    .map(|t| cols.iter().all(|c| t.schema().contains(c)))
                    .unwrap_or(false)
            });
            if !on_fact && !on_some_dim {
                plan = LogicalPlan::Filter {
                    predicate: pred.clone(),
                    input: Box::new(plan),
                };
            }
        }
        Ok(LogicalPlan::Aggregate {
            group_by: query.group_by.clone(),
            aggregates: query.aggregates(),
            input: Box::new(plan),
        })
    }

    // -----------------------------------------------------------------
    // Sketch-join candidates
    // -----------------------------------------------------------------

    fn add_sketch_candidates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        out: &mut Vec<CandidatePlan>,
    ) -> Result<(), EngineError> {
        if query.joins.is_empty() {
            return Ok(());
        }
        let aggregates = query.aggregates();
        if aggregates.is_empty() || aggregates.iter().any(|a| !a.func.is_approximable()) {
            return Ok(());
        }

        // Eligibility (Section IV-A, "Choosing and configuring the
        // synopses"): find a joined relation T such that (a) every aggregate
        // input column lives on T (or the aggregates are COUNT(*) only),
        // (b) no grouping attribute lives on T, and (c) no filter predicate
        // references T. In the benchmark templates T is the fact-side
        // relation of the aggregation (e.g. `orderproducts`), summarized once
        // and reused by every query that joins it on the same key.
        //
        // Here the FROM table plays that role: the sketch summarizes the FROM
        // table keyed on its join column, and the *dimension* side becomes
        // the probe. This matches the instacart sketch templates, where the
        // groupings and filters are on the joined dimension tables.
        let fact = catalog.table(&query.from)?;
        let agg_columns: Vec<String> = aggregates.iter().filter_map(|a| a.column.clone()).collect();
        let aggregates_on_fact = agg_columns.iter().all(|c| fact.schema().contains(c));
        if !aggregates_on_fact {
            return Ok(());
        }
        let grouping_on_fact = query
            .group_by
            .iter()
            .any(|g| fact.schema().contains(g));
        if grouping_on_fact {
            return Ok(());
        }
        let filters_on_fact = query.predicates.iter().any(|p| {
            p.referenced_columns()
                .iter()
                .any(|c| fact.schema().contains(c))
        });
        if filters_on_fact {
            return Ok(());
        }
        // Single-join shape only: the probe side is the one joined table (for
        // multi-join templates the sample-based candidate covers the query).
        if query.joins.len() != 1 {
            return Ok(());
        }
        let join = &query.joins[0];
        let dim = catalog.table(&join.table)?;
        // Resolve key columns per side.
        let mut fact_keys = Vec::new();
        let mut dim_keys = Vec::new();
        for (a, b) in &join.conditions {
            if fact.schema().contains(a) && dim.schema().contains(b) {
                fact_keys.push(a.clone());
                dim_keys.push(b.clone());
            } else if fact.schema().contains(b) && dim.schema().contains(a) {
                fact_keys.push(b.clone());
                dim_keys.push(a.clone());
            } else {
                return Ok(());
            }
        }
        // Grouping attributes must all come from the probe (dimension) side.
        if !query.group_by.iter().all(|g| dim.schema().contains(g)) {
            return Ok(());
        }
        let value_column = agg_columns.first().cloned();

        // Probe-side plan: scan of the dimension table with its predicates.
        let dim_preds: Vec<Expr> = query
            .predicates
            .iter()
            .filter(|p| {
                p.referenced_columns()
                    .iter()
                    .all(|c| dim.schema().contains(c))
            })
            .cloned()
            .collect();
        let dim_filter = dim_preds.into_iter().reduce(Expr::and);
        let probe = LogicalPlan::Scan {
            table: join.table.clone(),
            filter: dim_filter,
            projection: None,
        };

        // Register the candidate sketch synopsis.
        let fingerprint = format!(
            "sketchjoin-summary({};{};{})",
            query.from,
            fact_keys.join(","),
            value_column.clone().unwrap_or_default()
        );
        let provisional_id = metadata.allocate_id();
        let accuracy = self.accuracy(query);
        let synopsis_id = metadata.register(SynopsisDescriptor {
            id: provisional_id,
            fingerprint,
            base_tables: vec![query.from.clone()],
            kind: SynopsisKind::SketchJoin {
                table: query.from.clone(),
                key_columns: fact_keys.clone(),
                value_column: value_column.clone(),
            },
            accuracy,
            estimated_bytes: 512 << 10,
            estimated_rows: fact.num_rows(),
            pinned: false,
        });

        let existing = find_sketch_match(
            metadata,
            store,
            &query.from,
            &fact_keys,
            &value_column,
            fact.num_rows(),
            self.config.max_staleness,
        );
        let (sketch_ref, uses, creates, description, leases) = match existing {
            Some(lease) => {
                let id = lease.id();
                (
                    SketchRef::Materialized { id },
                    vec![id],
                    vec![],
                    format!("reuse materialized sketch-join {id} over {}", query.from),
                    vec![lease],
                )
            }
            None => (
                SketchRef::Build {
                    table: query.from.clone(),
                    key_columns: fact_keys.clone(),
                    value_column: value_column.clone(),
                },
                vec![],
                vec![synopsis_id],
                format!("sketch-join building sketch over {}", query.from),
                vec![],
            ),
        };

        let future_plan = LogicalPlan::SketchJoinAgg {
            probe: Box::new(probe.clone()),
            probe_keys: dim_keys.clone(),
            sketch: SketchRef::Materialized { id: synopsis_id },
            synopsis_id,
            group_by: query.group_by.clone(),
            aggregates: aggregates.clone(),
        };
        out.push(CandidatePlan {
            plan: LogicalPlan::SketchJoinAgg {
                probe: Box::new(probe),
                probe_keys: dim_keys,
                sketch: sketch_ref,
                synopsis_id,
                group_by: query.group_by.clone(),
                aggregates,
            },
            uses,
            creates: creates.clone(),
            cost_ns: 0.0,
            future_cost_ns: 0.0,
            future_plan: if creates.is_empty() {
                None
            } else {
                Some(future_plan)
            },
            description,
            leases,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taster_engine::parse_query;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let n = 20_000usize;
        let orders = BatchBuilder::new()
            .column("o_id", (0..n as i64).collect::<Vec<_>>())
            .column("o_cust", (0..n as i64).map(|i| i % 50).collect::<Vec<_>>())
            .column("o_flag", (0..n as i64).map(|i| i % 5).collect::<Vec<_>>())
            .column("o_price", (0..n).map(|i| (i % 97) as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 4).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..50i64).collect::<Vec<_>>())
            .column("c_region", (0..50i64).map(|i| i % 5).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customer", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn planner() -> Planner {
        Planner::new(TasterConfig::default(), IoModel::default())
    }

    #[test]
    fn generates_sample_candidate_for_group_by_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(!out.candidates.is_empty());
        assert!(out.exact_cost_ns > 0.0);
        let create = &out.candidates[0];
        assert_eq!(create.creates.len(), 1);
        assert!(create.plan.is_approximate());
        assert_eq!(md.num_synopses(), 1);
    }

    #[test]
    fn reuse_candidate_appears_once_sample_is_materialized() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(64 << 20, 64 << 20);
        let q = parse_query("SELECT o_flag, AVG(o_price) FROM orders GROUP BY o_flag").unwrap();
        let p = planner();

        let out1 = p.plan(&q, &cat, &mut md, &store).unwrap();
        let created_id = out1.candidates[0].creates[0];
        assert!(
            !out1.candidates.iter().any(|c| !c.uses.is_empty()),
            "no reuse before materialization"
        );

        // Materialize the sample by actually executing the creation plan.
        let ctx = taster_engine::ExecutionContext::new(cat.clone());
        let res = taster_engine::physical::execute(&out1.candidates[0].plan, &ctx).unwrap();
        for (id, payload) in &res.byproducts {
            store.insert_into_buffer(*id, payload, false);
            md.set_actual_size(*id, payload.size_bytes());
        }

        let out2 = p.plan(&q, &cat, &mut md, &store).unwrap();
        let reuse: Vec<_> = out2
            .candidates
            .iter()
            .filter(|c| c.uses.contains(&created_id))
            .collect();
        assert_eq!(reuse.len(), 1, "exactly one reuse candidate expected");
        assert!(
            reuse[0].cost_ns < out2.exact_cost_ns,
            "reuse must be cheaper than exact"
        );
        // The same logical synopsis is not registered twice.
        assert_eq!(md.num_synopses(), 1);
    }

    #[test]
    fn sketch_join_candidate_for_eligible_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT c_region, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY c_region",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        let sketch: Vec<_> = out
            .candidates
            .iter()
            .filter(|c| matches!(c.plan, LogicalPlan::SketchJoinAgg { .. }))
            .collect();
        assert_eq!(sketch.len(), 1);
        assert_eq!(sketch[0].creates.len(), 1);
    }

    #[test]
    fn sketch_join_not_generated_when_grouping_on_fact() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT o_flag, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY o_flag",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(!out
            .candidates
            .iter()
            .any(|c| matches!(c.plan, LogicalPlan::SketchJoinAgg { .. })));
    }

    #[test]
    fn no_candidates_for_non_approximable_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT o_id, o_price FROM orders WHERE o_price > 90").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out.candidates.is_empty());
        assert_eq!(md.num_synopses(), 0);
    }

    #[test]
    fn restrictive_accuracy_suppresses_sampling() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        // o_id is unique: stratifying on the grouping column yields one row
        // per group, so no sampling probability can satisfy the requirement.
        let q = parse_query(
            "SELECT o_id, SUM(o_price) FROM orders GROUP BY o_id ERROR WITHIN 1% AT CONFIDENCE 99%",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out
            .candidates
            .iter()
            .all(|c| !matches!(c.plan, LogicalPlan::Aggregate { .. }) || c.creates.is_empty()));
    }

    #[test]
    fn alternatives_mirror_candidates() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT o_flag, COUNT(*) FROM orders GROUP BY o_flag").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        let alts = out.alternatives();
        assert_eq!(alts.len(), out.candidates.len());
        for (a, c) in alts.iter().zip(&out.candidates) {
            // Alternatives carry the cost assuming the synopsis exists; for
            // plans that create one this is cheaper than the immediate cost.
            assert_eq!(a.cost_ns, c.future_cost_ns);
            assert!(a.cost_ns <= c.cost_ns + 1e-6);
        }
    }
}
