//! The cost-based planner (Section IV).
//!
//! For every query the planner produces the exact plan plus a set of
//! candidate approximate plans:
//!
//! 1. **Sample injection** — a synopsis operator is injected below the
//!    aggregation and pushed down onto the aggregation-side base relation
//!    (the FROM table of the benchmark queries), *below* that relation's
//!    filters, so the resulting sample summarizes the raw relation and is
//!    maximally reusable. The stratification set is derived from the rules of
//!    Section IV-A: grouping attributes on the relation, join keys on the
//!    relation, and filter attributes whose value distribution is skewed.
//!    The sampler type (uniform vs. distinct) and its probability are
//!    configured from the table statistics and the query's accuracy
//!    requirement.
//! 2. **Sample reuse** — if the metadata store knows a *materialized* sample
//!    that subsumes the required one, a plan scanning that synopsis (plus a
//!    residual filter) replaces the base-table scan entirely.
//! 3. **Sketch-join** — when the eligibility conditions of Section IV-A hold
//!    (the aggregation input comes from one join side, the grouping and
//!    filter attributes from the other), a sketch-join plan is produced,
//!    either building the sketch during the query or reusing a materialized
//!    one.
//!
//! All candidates are costed with the engine's [`CostEstimator`]; every
//! candidate synopsis (built or not) is registered in the metadata store so
//! the tuner can reason about it later.

use std::collections::HashMap;

use taster_engine::cost::{CostEstimator, SynopsisCostHint};
use taster_engine::sql::{ErrorSpec, SelectQuery};
use taster_engine::{
    index_access_path, EngineError, Expr, LogicalPlan, SampleMethod, SketchRef,
};
use taster_storage::{Catalog, IoModel};
use taster_synopses::estimator::required_probability;

use crate::cardinality::{CardinalityCache, SynopsisCardinality};
use crate::config::TasterConfig;
use crate::matching::{find_sample_match, find_sketch_match, SampleRequirement};
use crate::metadata::{MetadataStore, PlanAlternative};
use crate::store::{SynopsisLease, SynopsisStore};
use crate::synopsis::{SynopsisDescriptor, SynopsisId, SynopsisKind};

/// One candidate (approximate) plan.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The executable logical plan.
    pub plan: LogicalPlan,
    /// Materialized synopses the plan reads.
    pub uses: Vec<SynopsisId>,
    /// Synopses the plan will build as byproducts.
    pub creates: Vec<SynopsisId>,
    /// Estimated cost in simulated nanoseconds.
    pub cost_ns: f64,
    /// Estimated cost of answering the *same* query once the synopses this
    /// plan creates are materialized (equal to `cost_ns` for pure-reuse
    /// plans). This is the number the metadata store records so the tuner
    /// can value a synopsis by the queries it would speed up in the future —
    /// exactly the "estimated cost when this synopsis exists" of Section III.
    pub future_cost_ns: f64,
    /// The plan shape used to compute `future_cost_ns` (None for plans that
    /// create nothing).
    pub future_plan: Option<LogicalPlan>,
    /// Estimated output rows of `plan` (populated during re-costing; shown by
    /// [`PlannerOutput::explain`]).
    pub est_rows: f64,
    /// Human-readable description (for logging / EXPLAIN).
    pub description: String,
    /// Leases on every synopsis in `uses`, taken at match time. Holding the
    /// planner output through execution guarantees the matched synopses stay
    /// readable even if a tuner (this session's or a concurrent one) evicts
    /// them between planning and execution.
    pub leases: Vec<SynopsisLease>,
}

/// Planner output for one query.
#[derive(Debug, Clone)]
pub struct PlannerOutput {
    /// The parsed query.
    pub query: SelectQuery,
    /// The best exact plan.
    pub exact_plan: LogicalPlan,
    /// Its estimated cost.
    pub exact_cost_ns: f64,
    /// Its estimated output rows.
    pub exact_rows: f64,
    /// All approximate candidates (possibly empty for non-approximable
    /// queries).
    pub candidates: Vec<CandidatePlan>,
    /// Per-table partition encodings at plan time, as `(table, dict, raw)`
    /// counts of string-bearing partitions. Tables with no string columns
    /// are omitted. Lets EXPLAIN report whether scans will run over
    /// dictionary codes or raw strings.
    pub scan_encodings: Vec<(String, usize, usize)>,
}

impl PlannerOutput {
    /// Plan alternatives in the form the metadata store's query log expects.
    pub fn alternatives(&self) -> Vec<PlanAlternative> {
        self.candidates
            .iter()
            .map(|c| PlanAlternative {
                synopses: c
                    .uses
                    .iter()
                    .chain(c.creates.iter())
                    .copied()
                    .collect(),
                cost_ns: c.future_cost_ns,
            })
            .collect()
    }

    /// Render the planning decision as an aligned EXPLAIN-style block: one
    /// row per considered plan (the exact plan first), with estimated output
    /// rows, estimated cost and the access paths the plan uses. The engine
    /// prints this to stderr when `TASTER_EXPLAIN=1`.
    pub fn explain(&self) -> String {
        fn paths(plan: &LogicalPlan) -> String {
            let ps = plan.access_paths();
            if ps.is_empty() {
                "zonescan".to_string()
            } else {
                ps.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "plan for: {}\n{:<52} {:>14} {:>14}  {}\n",
            self.query.text, "plan", "est rows", "est cost ms", "access"
        ));
        out.push_str(&format!(
            "{:<52} {:>14.0} {:>14.3}  {}\n",
            "exact",
            self.exact_rows,
            self.exact_cost_ns / 1e6,
            paths(&self.exact_plan)
        ));
        for c in &self.candidates {
            let mut desc = c.description.clone();
            if desc.len() > 52 {
                desc.truncate(49);
                desc.push_str("...");
            }
            out.push_str(&format!(
                "{:<52} {:>14.0} {:>14.3}  {}\n",
                desc,
                c.est_rows,
                c.cost_ns / 1e6,
                paths(&c.plan)
            ));
        }
        for (table, dict, raw) in &self.scan_encodings {
            out.push_str(&format!("scan encoding: {table} dict({dict})/raw({raw})\n"));
        }
        out
    }
}

/// The Taster planner.
#[derive(Debug)]
pub struct Planner {
    config: TasterConfig,
    io_model: IoModel,
    /// Lazily built, cross-query cache of per-column frequency summaries
    /// backing synopsis-fed cardinality estimation.
    cards: CardinalityCache,
}

impl Planner {
    /// Create a planner with the given configuration and cost model.
    pub fn new(config: TasterConfig, io_model: IoModel) -> Self {
        Self {
            config,
            io_model,
            cards: CardinalityCache::new(),
        }
    }

    /// Generate the exact plan and all approximate candidates for a query,
    /// registering candidate synopses in the metadata store.
    pub fn plan(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
    ) -> Result<PlannerOutput, EngineError> {
        let cards = SynopsisCardinality::new(catalog, &self.cards, self.config.max_staleness);
        let exact_plan = query.to_exact_plan(catalog)?;
        let estimator = self.estimator(catalog, metadata, store, &cards);
        let exact = estimator.estimate(&exact_plan)?;

        let mut candidates = Vec::new();
        // Index access paths are exact plans — they compete for *every*
        // query, approximable or not, in the same cost comparison as the
        // synopsis candidates.
        self.add_index_candidates(&exact_plan, catalog, &estimator, &mut candidates);
        if query.is_approximable() {
            self.add_sample_candidates(query, catalog, metadata, store, &mut candidates)?;
            self.add_sketch_candidates(query, catalog, metadata, store, &mut candidates)?;
        }

        // Re-cost candidates with up-to-date hints (sizes of newly registered
        // synopses are estimates; materialized ones use actual sizes).
        let estimator = self.estimator(catalog, metadata, store, &cards);
        for c in &mut candidates {
            let est = estimator.estimate(&c.plan)?;
            c.cost_ns = est.cost_ns;
            c.est_rows = est.rows;
            c.future_cost_ns = match &c.future_plan {
                Some(p) => estimator.cost(p)?,
                None => c.cost_ns,
            };
        }

        let scan_encodings = query
            .tables()
            .into_iter()
            .filter_map(|t| {
                let (dict, raw) = catalog.table(&t).ok()?.snapshot().encoding_counts();
                (dict + raw > 0).then_some((t, dict, raw))
            })
            .collect();

        Ok(PlannerOutput {
            query: query.clone(),
            exact_plan,
            exact_cost_ns: exact.cost_ns,
            exact_rows: exact.rows,
            candidates,
            scan_encodings,
        })
    }

    fn estimator<'a>(
        &self,
        catalog: &'a Catalog,
        metadata: &MetadataStore,
        store: &SynopsisStore,
        cards: &'a dyn taster_engine::cost::CardinalityProvider,
    ) -> CostEstimator<'a> {
        let mut hints = HashMap::new();
        for id in metadata.synopsis_ids() {
            if let Some(meta) = metadata.get(id) {
                hints.insert(
                    id,
                    SynopsisCostHint {
                        rows: meta.descriptor.estimated_rows,
                        bytes: store.size_of(id).unwrap_or_else(|| meta.size_bytes()),
                        location: store.location(id),
                    },
                );
            }
        }
        CostEstimator::new(catalog, self.io_model)
            .with_hints(hints)
            .with_cardinality(cards)
    }

    // -----------------------------------------------------------------
    // Index-access-path candidates
    // -----------------------------------------------------------------

    /// Fraction-of-table cap above which an index probe is not worth the
    /// random-access overhead and the candidate is suppressed.
    const MAX_INDEX_FRACTION: f64 = 0.25;

    /// Derive index access paths for every filtered scan of the exact plan
    /// and, when at least one scan is annotated, emit the annotated plan as a
    /// candidate. The candidate reads no synopses and creates none, so the
    /// tuner compares it to the exact plan on cost alone.
    fn add_index_candidates(
        &self,
        exact_plan: &LogicalPlan,
        catalog: &Catalog,
        estimator: &CostEstimator<'_>,
        out: &mut Vec<CandidatePlan>,
    ) {
        let mut labels = Vec::new();
        let annotated = Self::annotate_scans(exact_plan, catalog, estimator, &mut labels);
        if labels.is_empty() {
            return;
        }
        out.push(CandidatePlan {
            plan: annotated,
            uses: vec![],
            creates: vec![],
            cost_ns: 0.0,
            future_cost_ns: 0.0,
            future_plan: None,
            description: format!("index access path: {}", labels.join(", ")),
            leases: vec![],
            est_rows: 0.0,
        });
    }

    /// Recursively rewrite the plan, annotating each filtered base-table scan
    /// with the best derivable (and fanout-gated) index access path. Pushes a
    /// `table@path` label per annotated scan into `labels`.
    fn annotate_scans(
        plan: &LogicalPlan,
        catalog: &Catalog,
        estimator: &CostEstimator<'_>,
        labels: &mut Vec<String>,
    ) -> LogicalPlan {
        let recurse =
            |p: &LogicalPlan, labels: &mut Vec<String>| Self::annotate_scans(p, catalog, estimator, labels);
        match plan {
            LogicalPlan::Scan {
                table,
                filter,
                projection,
                access,
            } => {
                let mut access = access.clone();
                if let (Some(f), Ok(t)) = (filter, catalog.table(table)) {
                    let indexed = t.indexed_columns();
                    if let Some(path) = index_access_path(f, &indexed) {
                        if let Some(gated) =
                            estimator.gate_access_path(table, path, Self::MAX_INDEX_FRACTION)
                        {
                            labels.push(format!("{table}@{gated}"));
                            access = Some(gated);
                        }
                    }
                }
                LogicalPlan::Scan {
                    table: table.clone(),
                    filter: filter.clone(),
                    projection: projection.clone(),
                    access,
                }
            }
            LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: Box::new(recurse(input, labels)),
            },
            LogicalPlan::Project { columns, input } => LogicalPlan::Project {
                columns: columns.clone(),
                input: Box::new(recurse(input, labels)),
            },
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => LogicalPlan::Join {
                left: Box::new(recurse(left, labels)),
                right: Box::new(recurse(right, labels)),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            },
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                input,
            } => LogicalPlan::Aggregate {
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
                input: Box::new(recurse(input, labels)),
            },
            LogicalPlan::Sample {
                method,
                synopsis_id,
                input,
            } => LogicalPlan::Sample {
                method: method.clone(),
                synopsis_id: *synopsis_id,
                input: Box::new(recurse(input, labels)),
            },
            LogicalPlan::SketchJoinAgg {
                probe,
                probe_keys,
                sketch,
                synopsis_id,
                group_by,
                aggregates,
            } => LogicalPlan::SketchJoinAgg {
                probe: Box::new(recurse(probe, labels)),
                probe_keys: probe_keys.clone(),
                sketch: sketch.clone(),
                synopsis_id: *synopsis_id,
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Limit { n, input } => LogicalPlan::Limit {
                n: *n,
                input: Box::new(recurse(input, labels)),
            },
            LogicalPlan::SynopsisScan { .. } => plan.clone(),
        }
    }

    // -----------------------------------------------------------------
    // Sample-based candidates
    // -----------------------------------------------------------------

    fn add_sample_candidates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        out: &mut Vec<CandidatePlan>,
    ) -> Result<(), EngineError> {
        // The aggregation-side relation of the benchmark queries is the FROM
        // table (the fact table); samples summarize it.
        let fact = query.from.clone();
        let fact_table = catalog.table(&fact)?;
        let stats = fact_table.stats();
        let accuracy = self.accuracy(query);

        // Stratification set (push-down rules of Section IV-A): grouping
        // attributes on the fact table, join keys on the fact side, and
        // skewed filter attributes on the fact table.
        let mut stratification: Vec<String> = Vec::new();
        for g in &query.group_by {
            if fact_table.schema().contains(g) {
                stratification.push(g.clone());
            }
        }
        // Join keys on the fact side are stratified on only when they have
        // few distinct values. For foreign-key joins against a complete
        // dimension table (the dominant shape in the benchmarks), every fact
        // row matches regardless of which rows the sampler keeps, so
        // guaranteeing δ rows per (near-unique) key would degenerate into
        // keeping the whole table; the planner instead relies on the
        // dimension side being complete — the same reasoning that lets
        // Quickr push samplers below such joins.
        let join_key_cardinality_cap = (fact_table.num_rows() / 100).max(64);
        for join in &query.joins {
            for (a, b) in &join.conditions {
                let key = if fact_table.schema().contains(a) {
                    Some(a)
                } else if fact_table.schema().contains(b) {
                    Some(b)
                } else {
                    None
                };
                if let Some(key) = key {
                    if stats.distinct_count(key) <= join_key_cardinality_cap {
                        stratification.push(key.clone());
                    }
                }
            }
        }
        // Filter attributes on the fact table join the stratification set
        // only when their value distribution is skewed *and* they have few
        // distinct values — stratifying on a near-unique column (a date or a
        // key) would force the sampler to keep essentially every row.
        for pred in &query.predicates {
            for col in pred.referenced_columns() {
                if fact_table.schema().contains(&col)
                    && stats.is_skewed(&col)
                    && stats.distinct_count(&col) <= join_key_cardinality_cap
                {
                    stratification.push(col);
                }
            }
        }
        stratification.sort();
        stratification.dedup();

        // Configure the sampler to satisfy the accuracy requirement. The
        // sample must leave enough rows in every *output* group, which is
        // determined by the grouping attributes wherever they live (fact or
        // dimension side), further thinned by the query's filters.
        let strat_groups = stats.distinct_combinations(&stratification).max(1);
        let mut output_groups = 1usize;
        for g in &query.group_by {
            for table_name in query.tables() {
                if let Ok(t) = catalog.table(&table_name) {
                    if t.schema().contains(g) {
                        output_groups = output_groups.saturating_mul(t.stats().distinct_count(g).max(1));
                        break;
                    }
                }
            }
        }
        // Accuracy is governed by the rows left in every *output* group (the
        // stratification keys only drive the coverage guarantee δ of the
        // distinct sampler). Each predicate roughly halves the rows
        // contributing to a group; be conservative and size the sample for
        // the thinned groups.
        let groups = output_groups.min(fact_table.num_rows().max(1)).max(1);
        let predicate_inflation = 2usize.pow(query.predicates.len().min(2) as u32);
        let rows_per_group = (fact_table.num_rows() / groups / predicate_inflation).max(1);
        // For SUM/COUNT under Bernoulli sampling the relative error scales
        // with sqrt(1 + cv²)/sqrt(n), not cv/sqrt(n); AVG-only queries can use
        // the plain cv.
        let cv = self.aggregate_cv(query, &stats).unwrap_or(1.0);
        let sum_like = query
            .aggregates()
            .iter()
            .any(|a| matches!(a.func, taster_engine::AggFunc::Sum | taster_engine::AggFunc::Count));
        let cv_effective = if sum_like { (1.0 + cv * cv).sqrt() } else { cv };
        let probability = required_probability(
            rows_per_group,
            cv_effective,
            accuracy.relative_error,
            accuracy.confidence,
            self.config.min_rows_per_group,
        );
        // Quantize the probability onto a coarse grid (rounding up, so the
        // accuracy requirement is still met). Queries of the same template
        // whose randomized predicates lead to slightly different probabilities
        // then map to the *same* synopsis, which is what makes cross-query
        // reuse effective.
        let probability = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
            .into_iter()
            .find(|&g| g + 1e-12 >= probability)
            .unwrap_or(1.0);

        if std::env::var("TASTER_DEBUG_PLANNER").is_ok() {
            eprintln!(
                "[planner] fact={fact} strat={stratification:?} strat_groups={strat_groups} \
                 output_groups={output_groups} rows_per_group={rows_per_group} cv={cv:.3} \
                 cv_eff={cv_effective:.3} p={probability:.4}"
            );
        }
        // "Taster generates a plan without samplers if stratification and
        // accuracy requirements are so restrictive that they cannot be
        // satisfied with a reasonable sampling probability."
        if probability > 0.8 {
            return Ok(());
        }

        let use_uniform = stratification.is_empty()
            || (probability <= self.config.uniform_probability_threshold
                && probability * rows_per_group as f64
                    >= 2.0 * self.config.min_rows_per_group as f64);
        let method = if use_uniform {
            SampleMethod::Uniform { probability }
        } else {
            SampleMethod::Distinct {
                stratification: stratification.clone(),
                delta: self.config.min_rows_per_group,
                probability,
            }
        };

        // Register the candidate synopsis (deduplicated by fingerprint).
        let raw_scan = LogicalPlan::Scan {
            table: fact.clone(),
            filter: None,
            projection: None,
            access: None,
        };
        // The probability participates in the synopsis identity: a denser
        // sample of the same relation/stratification is a different synopsis
        // (and can serve queries that need the sparser one).
        let sample_fingerprint = format!(
            "p{probability:.2}:{}",
            LogicalPlan::Sample {
                method: method.clone(),
                synopsis_id: 0,
                input: Box::new(raw_scan.clone()),
            }
            .fingerprint()
        );
        let estimated_rows = (fact_table.num_rows() as f64 * probability) as usize
            + self.config.min_rows_per_group * groups;
        let estimated_bytes = ((fact_table.size_bytes() as f64) * probability * 1.1) as usize
            + estimated_rows * 8;
        let provisional_id = metadata.allocate_id();
        let synopsis_id = metadata.register(SynopsisDescriptor {
            id: provisional_id,
            fingerprint: sample_fingerprint,
            base_tables: vec![fact.clone()],
            kind: SynopsisKind::Sample {
                method: method.clone(),
            },
            accuracy,
            estimated_bytes,
            estimated_rows,
            pinned: false,
        });

        // Candidate A: build the sample during this query (online injection).
        let fact_predicates = self.fact_predicates(query, catalog)?;
        let create_plan = self.build_plan_with_fact_input(
            query,
            catalog,
            LogicalPlan::Sample {
                method: method.clone(),
                synopsis_id,
                input: Box::new(raw_scan),
            },
            fact_predicates.clone(),
        )?;
        let future_plan = self.build_plan_with_fact_input(
            query,
            catalog,
            LogicalPlan::SynopsisScan {
                id: synopsis_id,
                filter: None,
            },
            fact_predicates.clone(),
        )?;
        out.push(CandidatePlan {
            plan: create_plan,
            uses: vec![],
            creates: vec![synopsis_id],
            cost_ns: 0.0,
            future_cost_ns: 0.0,
            future_plan: Some(future_plan),
            description: format!(
                "online {} sample of {fact} (p={probability:.4}, strat=[{}])",
                if use_uniform { "uniform" } else { "distinct" },
                stratification.join(",")
            ),
            leases: vec![],
            est_rows: 0.0,
        });

        // Candidate B: reuse a materialized sample that subsumes this one.
        // The coverage requirement follows the sampler the planner itself
        // chose: when a uniform sample satisfies the query (all groups large
        // enough), any sufficiently dense sample matches; when the query
        // needs stratification, the stored sample must cover those attributes.
        let requirement = SampleRequirement {
            table: fact.clone(),
            stratification: method.stratification().to_vec(),
            accuracy,
            min_probability: probability,
            table_rows: fact_table.num_rows(),
            max_staleness: self.config.max_staleness,
        };
        if let Some(lease) = find_sample_match(metadata, store, &requirement) {
            let existing = lease.id();
            let reuse_plan = self.build_plan_with_fact_input(
                query,
                catalog,
                LogicalPlan::SynopsisScan {
                    id: existing,
                    filter: None,
                },
                fact_predicates,
            )?;
            out.push(CandidatePlan {
                plan: reuse_plan,
                uses: vec![existing],
                creates: vec![],
                cost_ns: 0.0,
                future_cost_ns: 0.0,
                future_plan: None,
                description: format!("reuse materialized sample {existing} of {fact}"),
                leases: vec![lease],
                est_rows: 0.0,
            });
        }
        Ok(())
    }

    /// Coefficient of variation of the first approximable aggregate's input
    /// column on the fact table, if known.
    fn aggregate_cv(
        &self,
        query: &SelectQuery,
        stats: &taster_storage::stats::TableStats,
    ) -> Option<f64> {
        for agg in query.aggregates() {
            if let Some(col) = &agg.column {
                if let Some(cs) = stats.column(col) {
                    if let Some(cv) = cs.coefficient_of_variation() {
                        return Some(cv.max(0.2));
                    }
                }
            }
        }
        None
    }

    fn accuracy(&self, query: &SelectQuery) -> ErrorSpec {
        query.error_spec.unwrap_or(ErrorSpec {
            relative_error: self.config.default_relative_error,
            confidence: self.config.default_confidence,
        })
    }

    /// Predicates that reference only fact-table columns (to be applied above
    /// the sample), and the rest (left to the generic builder below).
    pub fn fact_predicates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
    ) -> Result<Vec<Expr>, EngineError> {
        let fact = catalog.table(&query.from)?;
        Ok(query
            .predicates
            .iter()
            .filter(|p| {
                p.referenced_columns()
                    .iter()
                    .all(|c| fact.schema().contains(c))
            })
            .cloned()
            .collect())
    }

    /// Build the full query plan but with `fact_input` in place of the plain
    /// fact-table scan: fact predicates are applied directly above the fact
    /// input, joins and remaining predicates follow, and the aggregation tops
    /// the plan.
    pub fn build_plan_with_fact_input(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        fact_input: LogicalPlan,
        fact_predicates: Vec<Expr>,
    ) -> Result<LogicalPlan, EngineError> {
        let fact = catalog.table(&query.from)?;
        let mut plan = fact_input;
        for pred in &fact_predicates {
            plan = LogicalPlan::Filter {
                predicate: pred.clone(),
                input: Box::new(plan),
            };
        }
        for join in &query.joins {
            let right_table = catalog.table(&join.table)?;
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for (a, b) in &join.conditions {
                if right_table.schema().contains(b) {
                    left_keys.push(a.clone());
                    right_keys.push(b.clone());
                } else if right_table.schema().contains(a) {
                    left_keys.push(b.clone());
                    right_keys.push(a.clone());
                } else {
                    return Err(EngineError::Plan(format!(
                        "join condition {a} = {b} does not reference table {}",
                        join.table
                    )));
                }
            }
            // Push the joined table's own predicates into its scan.
            let right_preds: Vec<Expr> = query
                .predicates
                .iter()
                .filter(|p| {
                    p.referenced_columns()
                        .iter()
                        .all(|c| right_table.schema().contains(c))
                })
                .cloned()
                .collect();
            let right_filter = right_preds.into_iter().reduce(Expr::and);
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.clone(),
                    filter: right_filter,
                    projection: None,
                    access: None,
                }),
                left_keys,
                right_keys,
            };
        }
        // Predicates referencing neither side alone (cross-table arithmetic)
        // or columns not on the fact table nor any single dimension are rare
        // in the benchmark templates; apply whatever is left above the joins.
        for pred in &query.predicates {
            let cols = pred.referenced_columns();
            let on_fact = cols.iter().all(|c| fact.schema().contains(c));
            let on_some_dim = query.joins.iter().any(|j| {
                catalog
                    .table(&j.table)
                    .map(|t| cols.iter().all(|c| t.schema().contains(c)))
                    .unwrap_or(false)
            });
            if !on_fact && !on_some_dim {
                plan = LogicalPlan::Filter {
                    predicate: pred.clone(),
                    input: Box::new(plan),
                };
            }
        }
        Ok(LogicalPlan::Aggregate {
            group_by: query.group_by.clone(),
            aggregates: query.aggregates(),
            input: Box::new(plan),
        })
    }

    // -----------------------------------------------------------------
    // Sketch-join candidates
    // -----------------------------------------------------------------

    fn add_sketch_candidates(
        &self,
        query: &SelectQuery,
        catalog: &Catalog,
        metadata: &mut MetadataStore,
        store: &SynopsisStore,
        out: &mut Vec<CandidatePlan>,
    ) -> Result<(), EngineError> {
        if query.joins.is_empty() {
            return Ok(());
        }
        let aggregates = query.aggregates();
        if aggregates.is_empty() || aggregates.iter().any(|a| !a.func.is_approximable()) {
            return Ok(());
        }

        // Eligibility (Section IV-A, "Choosing and configuring the
        // synopses"): find a joined relation T such that (a) every aggregate
        // input column lives on T (or the aggregates are COUNT(*) only),
        // (b) no grouping attribute lives on T, and (c) no filter predicate
        // references T. In the benchmark templates T is the fact-side
        // relation of the aggregation (e.g. `orderproducts`), summarized once
        // and reused by every query that joins it on the same key.
        //
        // Here the FROM table plays that role: the sketch summarizes the FROM
        // table keyed on its join column, and the *dimension* side becomes
        // the probe. This matches the instacart sketch templates, where the
        // groupings and filters are on the joined dimension tables.
        let fact = catalog.table(&query.from)?;
        let agg_columns: Vec<String> = aggregates.iter().filter_map(|a| a.column.clone()).collect();
        let aggregates_on_fact = agg_columns.iter().all(|c| fact.schema().contains(c));
        if !aggregates_on_fact {
            return Ok(());
        }
        let grouping_on_fact = query
            .group_by
            .iter()
            .any(|g| fact.schema().contains(g));
        if grouping_on_fact {
            return Ok(());
        }
        let filters_on_fact = query.predicates.iter().any(|p| {
            p.referenced_columns()
                .iter()
                .any(|c| fact.schema().contains(c))
        });
        if filters_on_fact {
            return Ok(());
        }
        // Single-join shape only: the probe side is the one joined table (for
        // multi-join templates the sample-based candidate covers the query).
        if query.joins.len() != 1 {
            return Ok(());
        }
        let join = &query.joins[0];
        let dim = catalog.table(&join.table)?;
        // Resolve key columns per side.
        let mut fact_keys = Vec::new();
        let mut dim_keys = Vec::new();
        for (a, b) in &join.conditions {
            if fact.schema().contains(a) && dim.schema().contains(b) {
                fact_keys.push(a.clone());
                dim_keys.push(b.clone());
            } else if fact.schema().contains(b) && dim.schema().contains(a) {
                fact_keys.push(b.clone());
                dim_keys.push(a.clone());
            } else {
                return Ok(());
            }
        }
        // Grouping attributes must all come from the probe (dimension) side.
        if !query.group_by.iter().all(|g| dim.schema().contains(g)) {
            return Ok(());
        }
        let value_column = agg_columns.first().cloned();

        // Probe-side plan: scan of the dimension table with its predicates.
        let dim_preds: Vec<Expr> = query
            .predicates
            .iter()
            .filter(|p| {
                p.referenced_columns()
                    .iter()
                    .all(|c| dim.schema().contains(c))
            })
            .cloned()
            .collect();
        let dim_filter = dim_preds.into_iter().reduce(Expr::and);
        let probe = LogicalPlan::Scan {
            table: join.table.clone(),
            filter: dim_filter,
            projection: None,
            access: None,
        };

        // Register the candidate sketch synopsis.
        let fingerprint = format!(
            "sketchjoin-summary({};{};{})",
            query.from,
            fact_keys.join(","),
            value_column.clone().unwrap_or_default()
        );
        let provisional_id = metadata.allocate_id();
        let accuracy = self.accuracy(query);
        let synopsis_id = metadata.register(SynopsisDescriptor {
            id: provisional_id,
            fingerprint,
            base_tables: vec![query.from.clone()],
            kind: SynopsisKind::SketchJoin {
                table: query.from.clone(),
                key_columns: fact_keys.clone(),
                value_column: value_column.clone(),
            },
            accuracy,
            estimated_bytes: 512 << 10,
            estimated_rows: fact.num_rows(),
            pinned: false,
        });

        let existing = find_sketch_match(
            metadata,
            store,
            &query.from,
            &fact_keys,
            &value_column,
            fact.num_rows(),
            self.config.max_staleness,
        );
        let (sketch_ref, uses, creates, description, leases) = match existing {
            Some(lease) => {
                let id = lease.id();
                (
                    SketchRef::Materialized { id },
                    vec![id],
                    vec![],
                    format!("reuse materialized sketch-join {id} over {}", query.from),
                    vec![lease],
                )
            }
            None => (
                SketchRef::Build {
                    table: query.from.clone(),
                    key_columns: fact_keys.clone(),
                    value_column: value_column.clone(),
                },
                vec![],
                vec![synopsis_id],
                format!("sketch-join building sketch over {}", query.from),
                vec![],
            ),
        };

        let future_plan = LogicalPlan::SketchJoinAgg {
            probe: Box::new(probe.clone()),
            probe_keys: dim_keys.clone(),
            sketch: SketchRef::Materialized { id: synopsis_id },
            synopsis_id,
            group_by: query.group_by.clone(),
            aggregates: aggregates.clone(),
        };
        out.push(CandidatePlan {
            plan: LogicalPlan::SketchJoinAgg {
                probe: Box::new(probe),
                probe_keys: dim_keys,
                sketch: sketch_ref,
                synopsis_id,
                group_by: query.group_by.clone(),
                aggregates,
            },
            uses,
            creates: creates.clone(),
            cost_ns: 0.0,
            future_cost_ns: 0.0,
            future_plan: if creates.is_empty() {
                None
            } else {
                Some(future_plan)
            },
            description,
            leases,
            est_rows: 0.0,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taster_engine::parse_query;
    use taster_storage::batch::BatchBuilder;
    use taster_storage::Table;

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new();
        let n = 20_000usize;
        let orders = BatchBuilder::new()
            .column("o_id", (0..n as i64).collect::<Vec<_>>())
            .column("o_cust", (0..n as i64).map(|i| i % 50).collect::<Vec<_>>())
            .column("o_flag", (0..n as i64).map(|i| i % 5).collect::<Vec<_>>())
            .column("o_price", (0..n).map(|i| (i % 97) as f64).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("orders", orders, 4).unwrap());
        let cust = BatchBuilder::new()
            .column("c_id", (0..50i64).collect::<Vec<_>>())
            .column("c_region", (0..50i64).map(|i| i % 5).collect::<Vec<_>>())
            .build()
            .unwrap();
        cat.register(Table::from_batch("customer", cust, 1).unwrap());
        Arc::new(cat)
    }

    fn planner() -> Planner {
        Planner::new(TasterConfig::default(), IoModel::default())
    }

    #[test]
    fn explain_reports_scan_encodings_for_string_tables() {
        let cat = catalog();
        // A string-bearing table sealed into encoded partitions plus one
        // raw unsealed tail.
        let n = 90usize;
        let items = BatchBuilder::new()
            .column("i_id", (0..n as i64).collect::<Vec<_>>())
            .column(
                "i_kind",
                (0..n)
                    .map(|i| ["bolt", "nut", "washer"][i % 3].to_string())
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        // 4 partitions of 90 rows seal at ceil(90/4) = 23 rows: the first
        // three (23 rows each) encode, the 21-row tail stays raw.
        cat.register(Table::from_batch("items", items, 4).unwrap());

        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT COUNT(*) FROM items WHERE i_kind = 'nut'").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert_eq!(out.scan_encodings, vec![("items".to_string(), 3, 1)]);
        assert!(out.explain().contains("scan encoding: items dict(3)/raw(1)"));

        // Tables without string columns stay silent.
        let q = parse_query("SELECT COUNT(*) FROM orders").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out.scan_encodings.is_empty());
        assert!(!out.explain().contains("scan encoding"));
    }

    #[test]
    fn generates_sample_candidate_for_group_by_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(!out.candidates.is_empty());
        assert!(out.exact_cost_ns > 0.0);
        let create = &out.candidates[0];
        assert_eq!(create.creates.len(), 1);
        assert!(create.plan.is_approximate());
        assert_eq!(md.num_synopses(), 1);
    }

    #[test]
    fn reuse_candidate_appears_once_sample_is_materialized() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(64 << 20, 64 << 20);
        let q = parse_query("SELECT o_flag, AVG(o_price) FROM orders GROUP BY o_flag").unwrap();
        let p = planner();

        let out1 = p.plan(&q, &cat, &mut md, &store).unwrap();
        let created_id = out1.candidates[0].creates[0];
        assert!(
            !out1.candidates.iter().any(|c| !c.uses.is_empty()),
            "no reuse before materialization"
        );

        // Materialize the sample by actually executing the creation plan.
        let ctx = taster_engine::ExecutionContext::new(cat.clone());
        let res = taster_engine::physical::execute(&out1.candidates[0].plan, &ctx).unwrap();
        for (id, payload) in &res.byproducts {
            store.insert_into_buffer(*id, payload, false);
            md.set_actual_size(*id, payload.size_bytes());
        }

        let out2 = p.plan(&q, &cat, &mut md, &store).unwrap();
        let reuse: Vec<_> = out2
            .candidates
            .iter()
            .filter(|c| c.uses.contains(&created_id))
            .collect();
        assert_eq!(reuse.len(), 1, "exactly one reuse candidate expected");
        assert!(
            reuse[0].cost_ns < out2.exact_cost_ns,
            "reuse must be cheaper than exact"
        );
        // The same logical synopsis is not registered twice.
        assert_eq!(md.num_synopses(), 1);
    }

    #[test]
    fn sketch_join_candidate_for_eligible_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT c_region, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY c_region",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        let sketch: Vec<_> = out
            .candidates
            .iter()
            .filter(|c| matches!(c.plan, LogicalPlan::SketchJoinAgg { .. }))
            .collect();
        assert_eq!(sketch.len(), 1);
        assert_eq!(sketch[0].creates.len(), 1);
    }

    #[test]
    fn sketch_join_not_generated_when_grouping_on_fact() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query(
            "SELECT o_flag, COUNT(*) FROM orders JOIN customer ON o_cust = c_id GROUP BY o_flag",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(!out
            .candidates
            .iter()
            .any(|c| matches!(c.plan, LogicalPlan::SketchJoinAgg { .. })));
    }

    #[test]
    fn no_candidates_for_non_approximable_query() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT o_id, o_price FROM orders WHERE o_price > 90").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out.candidates.is_empty());
        assert_eq!(md.num_synopses(), 0);
    }

    #[test]
    fn restrictive_accuracy_suppresses_sampling() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        // o_id is unique: stratifying on the grouping column yields one row
        // per group, so no sampling probability can satisfy the requirement.
        let q = parse_query(
            "SELECT o_id, SUM(o_price) FROM orders GROUP BY o_id ERROR WITHIN 1% AT CONFIDENCE 99%",
        )
        .unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out
            .candidates
            .iter()
            .all(|c| !matches!(c.plan, LogicalPlan::Aggregate { .. }) || c.creates.is_empty()));
    }

    #[test]
    fn index_candidate_generated_and_cheaper_for_point_query() {
        let cat = catalog();
        cat.table("orders").unwrap().create_index("o_id").unwrap();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT o_id, o_price FROM orders WHERE o_id = 7").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        let ix: Vec<_> = out
            .candidates
            .iter()
            .filter(|c| !c.plan.access_paths().is_empty())
            .collect();
        assert_eq!(ix.len(), 1, "exactly one index-path candidate");
        assert!(ix[0].uses.is_empty() && ix[0].creates.is_empty());
        assert!(
            ix[0].cost_ns < out.exact_cost_ns,
            "point index probe ({:.0}ns) must be cheaper than the scan ({:.0}ns)",
            ix[0].cost_ns,
            out.exact_cost_ns
        );
        let ex = out.explain();
        assert!(ex.contains("ix_eq"), "explain shows the access path:\n{ex}");
        assert!(ex.contains("exact"), "explain lists the exact plan:\n{ex}");
    }

    #[test]
    fn no_index_candidate_without_indexes_or_for_wide_predicates() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        // No index exists: no candidate, however selective the predicate.
        let q = parse_query("SELECT o_id FROM orders WHERE o_id = 7").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        assert!(out.candidates.iter().all(|c| c.plan.access_paths().is_empty()));

        // An index on a 5-value column: an equality matches ~20% of the
        // table, within the fan-out gate, but a >= range over most of the
        // domain is gated out.
        cat.table("orders").unwrap().create_index("o_flag").unwrap();
        let wide = parse_query("SELECT o_id FROM orders WHERE o_flag >= 0").unwrap();
        let out = planner().plan(&wide, &cat, &mut md, &store).unwrap();
        assert!(
            out.candidates.iter().all(|c| c.plan.access_paths().is_empty()),
            "a probe matching the whole table must be gated out"
        );
    }

    #[test]
    fn alternatives_mirror_candidates() {
        let cat = catalog();
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let q = parse_query("SELECT o_flag, COUNT(*) FROM orders GROUP BY o_flag").unwrap();
        let out = planner().plan(&q, &cat, &mut md, &store).unwrap();
        let alts = out.alternatives();
        assert_eq!(alts.len(), out.candidates.len());
        for (a, c) in alts.iter().zip(&out.candidates) {
            // Alternatives carry the cost assuming the synopsis exists; for
            // plans that create one this is cheaper than the immediate cost.
            assert_eq!(a.cost_ns, c.future_cost_ns);
            assert!(a.cost_ns <= c.cost_ns + 1e-6);
        }
    }
}
