//! The synopsis buffer and warehouse.
//!
//! Materialized synopses live in one of two tiers (Section III):
//!
//! * the **synopsis buffer** — a fixed-size in-memory cache holding synopses
//!   freshly generated as byproducts of query execution; it decouples the
//!   (expensive) decision to persist a synopsis from the (latency-critical)
//!   query path,
//! * the **synopsis warehouse** — the persistent, quota-bounded store
//!   (HDFS in the paper, a simulated persistent tier here).
//!
//! A synopsis id occupies **at most one tier at a time**: inserting into one
//! tier removes any live copy from the other, so byte accounting can never
//! double-count a synopsis.
//!
//! The store implements [`SynopsisProvider`] so the engine's executor can
//! resolve `SynopsisScan` / `SketchRef::Materialized` nodes directly, and it
//! reports the tier of every hit so reads are charged at the right simulated
//! bandwidth.
//!
//! # Leases and deferred eviction
//!
//! Concurrent sessions race the tuner: session A's planner matches a
//! materialized synopsis, then session B's tuner (or A's own, later in the
//! same query) decides to evict it before A has executed its plan. To make
//! the matched plan executable regardless, the store hands out
//! reference-counted **leases** ([`SynopsisStore::lease`]):
//!
//! * a lease snapshots the payload (and tier) **as matched** — the engine
//!   executes leased plans through that snapshot, so neither eviction nor a
//!   concurrent re-materialization of the same id (same fingerprint, new
//!   sample) can change what an in-flight plan reads;
//! * evicting a leased synopsis removes it *logically* — it stops appearing
//!   in [`location`], [`materialized_ids`], sizes and quota accounting, so
//!   planners stop matching it and its space is immediately reusable — while
//!   the payload moves to a graveyard that keeps it resolvable through the
//!   provider until the last lease on the id drops;
//! * pinned synopses are never evicted, leased or not.
//!
//! `SynopsisStore` is a cheap-to-clone handle (`Arc` inner): clones share the
//! same tiers, which is how one store serves the engine façade, the planner
//! and the executor's [`SynopsisProvider`] at once.
//!
//! [`location`]: SynopsisStore::location
//! [`materialized_ids`]: SynopsisStore::materialized_ids

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use taster_engine::context::{SynopsisLocation, SynopsisProvider};
use taster_engine::SynopsisPayload;
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::WeightedSample;

use crate::synopsis::SynopsisId;

/// A materialized synopsis payload plus bookkeeping.
#[derive(Debug, Clone)]
struct Stored {
    sample: Option<Arc<WeightedSample>>,
    sketch: Option<Arc<SketchJoin>>,
    bytes: usize,
    pinned: bool,
}

#[derive(Debug, Default)]
struct Tier {
    entries: HashMap<SynopsisId, Stored>,
    used_bytes: usize,
    quota_bytes: usize,
}

impl Tier {
    fn insert(&mut self, id: SynopsisId, stored: Stored) -> Option<Stored> {
        self.used_bytes += stored.bytes;
        let old = self.entries.insert(id, stored);
        if let Some(old) = &old {
            self.used_bytes -= old.bytes;
        }
        old
    }

    fn remove(&mut self, id: SynopsisId) -> Option<Stored> {
        let removed = self.entries.remove(&id)?;
        self.used_bytes -= removed.bytes;
        Some(removed)
    }
}

/// Shared state behind a [`SynopsisStore`] handle.
///
/// Lock order: `buffer` → `warehouse` → `leases` → `graveyard` (any prefix
/// may be skipped, never reordered).
#[derive(Debug)]
struct StoreInner {
    buffer: RwLock<Tier>,
    warehouse: RwLock<Tier>,
    /// Outstanding lease count per synopsis id. Counts are per *id*: a lease
    /// taken on an earlier copy of an id keeps protecting the graveyard
    /// payload even if the id is re-materialized meanwhile.
    leases: Mutex<HashMap<SynopsisId, usize>>,
    /// Logically evicted (or displaced-by-reinsert) payloads kept readable
    /// for outstanding lease holders, tagged with the tier they lived in (so
    /// reads stay charged at the right simulated bandwidth); reaped when the
    /// id's last lease drops.
    graveyard: Mutex<HashMap<SynopsisId, (Stored, SynopsisLocation)>>,
}

impl StoreInner {
    /// Park a displaced payload for its lease holders; dropped instead when
    /// no lease on the id is outstanding. Checking the count and burying
    /// happen under the leases lock so a racing last-release cannot strand an
    /// unreapable graveyard entry. If the graveyard already holds a copy for
    /// this id, the older one wins — outstanding leases predate the newcomer
    /// (lease holders that matter read their own snapshot anyway; the
    /// graveyard is the by-id fallback).
    fn bury_if_leased(&self, id: SynopsisId, stored: Option<Stored>, from: SynopsisLocation) {
        let Some(stored) = stored else { return };
        let leases = self.leases.lock();
        if leases.get(&id).copied().unwrap_or(0) > 0 {
            self.graveyard.lock().entry(id).or_insert((stored, from));
        }
    }

    fn retain(&self, id: SynopsisId) {
        *self.leases.lock().entry(id).or_insert(0) += 1;
    }

    /// Drop one lease on `id`; on the last release the graveyard copy (if
    /// any) is reaped. The graveyard lock nests inside the leases lock,
    /// mirroring `bury_if_leased`.
    fn release(&self, id: SynopsisId) {
        let mut leases = self.leases.lock();
        let Some(count) = leases.get_mut(&id) else {
            return;
        };
        *count -= 1;
        if *count == 0 {
            leases.remove(&id);
            self.graveyard.lock().remove(&id);
        }
    }
}

/// A reference-counted lease on a materialized synopsis, snapshotting the
/// payload as it was at match time.
///
/// While at least one lease on an id is alive, [`SynopsisStore::evict`] only
/// *logically* removes the entry: the payload stays resolvable through the
/// [`SynopsisProvider`] so an already-planned query can still read it; it is
/// reaped when the last lease drops. The engine resolves leased plans through
/// the lease's own [`sample`](Self::sample) / [`sketch`](Self::sketch)
/// snapshot, which additionally pins the exact payload against concurrent
/// re-materializations of the same id. Cloning a lease takes another
/// reference.
pub struct SynopsisLease {
    inner: Arc<StoreInner>,
    id: SynopsisId,
    sample: Option<Arc<WeightedSample>>,
    sketch: Option<Arc<SketchJoin>>,
    location: SynopsisLocation,
}

impl SynopsisLease {
    /// The leased synopsis id.
    pub fn id(&self) -> SynopsisId {
        self.id
    }

    /// The sample payload as matched at plan time, with the tier it lived in
    /// (for simulated read charging).
    pub fn sample(&self) -> Option<(Arc<WeightedSample>, SynopsisLocation)> {
        self.sample.clone().map(|s| (s, self.location))
    }

    /// The sketch payload as matched at plan time, with its tier.
    pub fn sketch(&self) -> Option<(Arc<SketchJoin>, SynopsisLocation)> {
        self.sketch.clone().map(|s| (s, self.location))
    }
}

impl Clone for SynopsisLease {
    fn clone(&self) -> Self {
        self.inner.retain(self.id);
        SynopsisLease {
            inner: Arc::clone(&self.inner),
            id: self.id,
            sample: self.sample.clone(),
            sketch: self.sketch.clone(),
            location: self.location,
        }
    }
}

impl Drop for SynopsisLease {
    fn drop(&mut self) {
        self.inner.release(self.id);
    }
}

impl std::fmt::Debug for SynopsisLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynopsisLease")
            .field("id", &self.id)
            .field("location", &self.location)
            .finish()
    }
}

/// Two-tier synopsis store (buffer + warehouse) with byte quotas.
///
/// Cloning the store yields another handle to the *same* tiers; all methods
/// take `&self` and are safe to call from multiple sessions concurrently.
#[derive(Debug, Clone)]
pub struct SynopsisStore {
    inner: Arc<StoreInner>,
}

/// A snapshot of the store's occupancy, used by the benchmark harnesses
/// (Fig. 6 plots the warehouse size over time). Logically evicted entries
/// (alive only for lease holders) are excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreUsage {
    /// Bytes currently held in the buffer.
    pub buffer_bytes: usize,
    /// Buffer quota.
    pub buffer_quota: usize,
    /// Bytes currently held in the warehouse.
    pub warehouse_bytes: usize,
    /// Warehouse quota.
    pub warehouse_quota: usize,
    /// Number of synopses in the buffer.
    pub buffer_count: usize,
    /// Number of synopses in the warehouse.
    pub warehouse_count: usize,
}

impl SynopsisStore {
    /// Create a store with the given byte quotas.
    pub fn new(buffer_quota_bytes: usize, warehouse_quota_bytes: usize) -> Self {
        Self {
            inner: Arc::new(StoreInner {
                buffer: RwLock::new(Tier {
                    quota_bytes: buffer_quota_bytes,
                    ..Default::default()
                }),
                warehouse: RwLock::new(Tier {
                    quota_bytes: warehouse_quota_bytes,
                    ..Default::default()
                }),
                leases: Mutex::new(HashMap::new()),
                graveyard: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Current occupancy of both tiers.
    pub fn usage(&self) -> StoreUsage {
        let b = self.inner.buffer.read();
        let w = self.inner.warehouse.read();
        StoreUsage {
            buffer_bytes: b.used_bytes,
            buffer_quota: b.quota_bytes,
            warehouse_bytes: w.used_bytes,
            warehouse_quota: w.quota_bytes,
            buffer_count: b.entries.len(),
            warehouse_count: w.entries.len(),
        }
    }

    /// Change the warehouse quota at runtime (storage elasticity). The tuner
    /// is responsible for re-evaluating and evicting afterwards.
    pub fn set_warehouse_quota(&self, bytes: usize) {
        self.inner.warehouse.write().quota_bytes = bytes;
    }

    /// The warehouse quota in bytes.
    pub fn warehouse_quota(&self) -> usize {
        self.inner.warehouse.read().quota_bytes
    }

    /// Where a synopsis currently lives, if materialized at all. Logically
    /// evicted (graveyard) entries report `None`. Both tier locks are read
    /// simultaneously so a concurrent cross-tier move cannot make a live
    /// entry transiently report as absent.
    pub fn location(&self, id: SynopsisId) -> Option<SynopsisLocation> {
        let buffer = self.inner.buffer.read();
        let warehouse = self.inner.warehouse.read();
        if buffer.entries.contains_key(&id) {
            return Some(SynopsisLocation::Buffer);
        }
        if warehouse.entries.contains_key(&id) {
            return Some(SynopsisLocation::Warehouse);
        }
        None
    }

    /// Actual size in bytes of a materialized synopsis (both tier locks held,
    /// like [`location`](Self::location)).
    pub fn size_of(&self, id: SynopsisId) -> Option<usize> {
        let buffer = self.inner.buffer.read();
        let warehouse = self.inner.warehouse.read();
        if let Some(s) = buffer.entries.get(&id) {
            return Some(s.bytes);
        }
        warehouse.entries.get(&id).map(|s| s.bytes)
    }

    /// Ids of the synopses currently held in the in-memory buffer.
    pub fn buffer_ids(&self) -> Vec<SynopsisId> {
        let mut ids: Vec<SynopsisId> = self.inner.buffer.read().entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of all synopses currently materialized (either tier).
    pub fn materialized_ids(&self) -> Vec<SynopsisId> {
        let mut ids: Vec<SynopsisId> = self
            .inner
            .buffer
            .read()
            .entries
            .keys()
            .chain(self.inner.warehouse.read().entries.keys())
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Take a lease on a materialized synopsis, snapshotting its payload and
    /// protecting it from physical removal until the lease is dropped.
    /// Returns `None` if the synopsis is not (or no longer) materialized.
    pub fn lease(&self, id: SynopsisId) -> Option<SynopsisLease> {
        let buffer = self.inner.buffer.read();
        let warehouse = self.inner.warehouse.read();
        let (entry, location) = if let Some(e) = buffer.entries.get(&id) {
            (e, SynopsisLocation::Buffer)
        } else if let Some(e) = warehouse.entries.get(&id) {
            (e, SynopsisLocation::Warehouse)
        } else {
            return None;
        };
        let lease = SynopsisLease {
            inner: Arc::clone(&self.inner),
            id,
            sample: entry.sample.clone(),
            sketch: entry.sketch.clone(),
            location,
        };
        self.inner.retain(id);
        Some(lease)
    }

    /// Insert a byproduct synopsis into the in-memory buffer. Any live copy
    /// in the warehouse is removed first (tiers are exclusive); displaced
    /// copies with outstanding leases stay readable until those drop.
    pub fn insert_into_buffer(&self, id: SynopsisId, payload: &SynopsisPayload, pinned: bool) {
        let stored = to_stored(payload, pinned);
        let mut buffer = self.inner.buffer.write();
        let mut warehouse = self.inner.warehouse.write();
        let displaced = warehouse.remove(id);
        let replaced = buffer.insert(id, stored);
        drop(warehouse);
        drop(buffer);
        self.inner
            .bury_if_leased(id, displaced, SynopsisLocation::Warehouse);
        self.inner.bury_if_leased(id, replaced, SynopsisLocation::Buffer);
    }

    /// Insert a synopsis directly into the warehouse (offline pre-built or
    /// promoted from the buffer). Any live copy in the buffer is removed
    /// first (tiers are exclusive); displaced copies with outstanding leases
    /// stay readable until those drop.
    pub fn insert_into_warehouse(&self, id: SynopsisId, payload: &SynopsisPayload, pinned: bool) {
        let stored = to_stored(payload, pinned);
        let mut buffer = self.inner.buffer.write();
        let mut warehouse = self.inner.warehouse.write();
        let displaced = buffer.remove(id);
        let replaced = warehouse.insert(id, stored);
        drop(warehouse);
        drop(buffer);
        self.inner.bury_if_leased(id, displaced, SynopsisLocation::Buffer);
        self.inner
            .bury_if_leased(id, replaced, SynopsisLocation::Warehouse);
    }

    /// Replace the payload of a **live** synopsis in whatever tier it
    /// currently occupies (the incremental-refresh path). Both tier locks
    /// are held across the presence check and the replacement, so a
    /// concurrent eviction or tier move cannot be overwritten: if the id is
    /// no longer live anywhere, nothing is inserted and `false` is returned
    /// — a refresh must never resurrect an entry the tuner evicted while
    /// the delta was being absorbed. The entry's existing pinned flag is
    /// preserved; a displaced leased payload stays readable until its
    /// leases drop.
    pub fn refresh_in_place(&self, id: SynopsisId, payload: &SynopsisPayload) -> bool {
        let mut buffer = self.inner.buffer.write();
        let mut warehouse = self.inner.warehouse.write();
        let (tier, location) = if buffer.entries.contains_key(&id) {
            (&mut *buffer, SynopsisLocation::Buffer)
        } else if warehouse.entries.contains_key(&id) {
            (&mut *warehouse, SynopsisLocation::Warehouse)
        } else {
            return false;
        };
        let pinned = tier.entries.get(&id).map(|e| e.pinned).unwrap_or(false);
        let replaced = tier.insert(id, to_stored(payload, pinned));
        drop(warehouse);
        drop(buffer);
        self.inner.bury_if_leased(id, replaced, location);
        true
    }

    /// Move a synopsis from the buffer to the warehouse, if present. Both
    /// tier locks are held for the move so the entry is never in limbo.
    pub fn promote_to_warehouse(&self, id: SynopsisId) -> bool {
        let mut buffer = self.inner.buffer.write();
        let mut warehouse = self.inner.warehouse.write();
        let Some(stored) = buffer.remove(id) else {
            return false;
        };
        let replaced = warehouse.insert(id, stored);
        drop(warehouse);
        drop(buffer);
        self.inner
            .bury_if_leased(id, replaced, SynopsisLocation::Warehouse);
        true
    }

    /// Remove a synopsis from wherever it lives. Pinned synopses are never
    /// removed (returns `false`). A leased synopsis is removed *logically* —
    /// it stops being matched, listed or counted against quotas — but its
    /// payload stays readable until the last lease drops.
    pub fn evict(&self, id: SynopsisId) -> bool {
        let (removed, from) = {
            let mut buffer = self.inner.buffer.write();
            if let Some(e) = buffer.entries.get(&id) {
                if e.pinned {
                    return false;
                }
                (buffer.remove(id), SynopsisLocation::Buffer)
            } else {
                drop(buffer);
                let mut warehouse = self.inner.warehouse.write();
                match warehouse.entries.get(&id) {
                    Some(e) if e.pinned => return false,
                    Some(_) => (warehouse.remove(id), SynopsisLocation::Warehouse),
                    None => return false,
                }
            }
        };
        self.inner.bury_if_leased(id, removed, from);
        true
    }

    /// `true` if the buffer is over its quota.
    pub fn buffer_over_quota(&self) -> bool {
        let b = self.inner.buffer.read();
        b.used_bytes > b.quota_bytes
    }

    /// `true` if the warehouse is over its quota.
    pub fn warehouse_over_quota(&self) -> bool {
        let w = self.inner.warehouse.read();
        w.used_bytes > w.quota_bytes
    }

    /// Free warehouse space (in bytes) still available under the quota.
    pub fn warehouse_free_bytes(&self) -> usize {
        let w = self.inner.warehouse.read();
        w.quota_bytes.saturating_sub(w.used_bytes)
    }

    /// Number of logically evicted payloads currently parked for lease
    /// holders. A quiescent store (no in-flight plans) must report zero —
    /// the overload/backpressure tests assert exactly that after a storm.
    pub fn graveyard_len(&self) -> usize {
        self.inner.graveyard.lock().len()
    }

    /// Number of synopsis ids with at least one outstanding lease. Like
    /// [`graveyard_len`](Self::graveyard_len), zero once every session's
    /// in-flight plans have completed.
    pub fn outstanding_leases(&self) -> usize {
        self.inner.leases.lock().len()
    }
}

fn to_stored(payload: &SynopsisPayload, pinned: bool) -> Stored {
    match payload {
        SynopsisPayload::Sample(s) => Stored {
            bytes: s.size_bytes(),
            sample: Some(Arc::new(s.clone())),
            sketch: None,
            pinned,
        },
        SynopsisPayload::Sketch(s) => Stored {
            bytes: s.size_bytes(),
            sample: None,
            sketch: Some(Arc::new(s.clone())),
            pinned,
        },
    }
}

impl SynopsisProvider for SynopsisStore {
    /// Resolve a sample by id. Logically evicted entries still resolve (via
    /// the graveyard, charged at the tier they lived in): a lease holder
    /// executing an already-planned query must be able to read the payload.
    /// Both tier locks are read simultaneously, like
    /// [`location`](SynopsisStore::location).
    fn sample(&self, id: u64) -> Option<(Arc<WeightedSample>, SynopsisLocation)> {
        {
            let buffer = self.inner.buffer.read();
            let warehouse = self.inner.warehouse.read();
            if let Some(sample) = buffer.entries.get(&id).and_then(|s| s.sample.clone()) {
                return Some((sample, SynopsisLocation::Buffer));
            }
            if let Some(sample) = warehouse.entries.get(&id).and_then(|s| s.sample.clone()) {
                return Some((sample, SynopsisLocation::Warehouse));
            }
        }
        self.inner
            .graveyard
            .lock()
            .get(&id)
            .and_then(|(s, loc)| s.sample.clone().map(|sample| (sample, *loc)))
    }

    /// Resolve a sketch by id (graveyard included, see [`Self::sample`]).
    fn sketch(&self, id: u64) -> Option<(Arc<SketchJoin>, SynopsisLocation)> {
        {
            let buffer = self.inner.buffer.read();
            let warehouse = self.inner.warehouse.read();
            if let Some(sketch) = buffer.entries.get(&id).and_then(|s| s.sketch.clone()) {
                return Some((sketch, SynopsisLocation::Buffer));
            }
            if let Some(sketch) = warehouse.entries.get(&id).and_then(|s| s.sketch.clone()) {
                return Some((sketch, SynopsisLocation::Warehouse));
            }
        }
        self.inner
            .graveyard
            .lock()
            .get(&id)
            .and_then(|(s, loc)| s.sketch.clone().map(|sketch| (sketch, *loc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn sample_payload(rows: usize) -> SynopsisPayload {
        let b = BatchBuilder::new()
            .column("x", (0..rows as i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        SynopsisPayload::Sample(WeightedSample {
            rows: b,
            weights: vec![1.0; rows],
            stratification: vec![],
            probability: 1.0,
            source_rows: rows,
        })
    }

    #[test]
    fn buffer_insert_lookup_and_promote() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(1, &sample_payload(10), false);
        assert_eq!(store.location(1), Some(SynopsisLocation::Buffer));
        assert!(store.sample(1).is_some());
        assert!(store.promote_to_warehouse(1));
        assert_eq!(store.location(1), Some(SynopsisLocation::Warehouse));
        let (_, loc) = store.sample(1).unwrap();
        assert_eq!(loc, SynopsisLocation::Warehouse);
        assert!(!store.promote_to_warehouse(1), "already promoted");
    }

    #[test]
    fn quota_accounting_and_eviction() {
        let store = SynopsisStore::new(100, 200);
        store.insert_into_buffer(1, &sample_payload(100), false);
        assert!(store.buffer_over_quota());
        assert!(store.evict(1));
        assert!(!store.buffer_over_quota());
        assert_eq!(store.usage().buffer_bytes, 0);
        assert!(!store.evict(1), "already evicted");
    }

    #[test]
    fn pinned_synopses_survive_eviction() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(5, &sample_payload(10), true);
        assert!(!store.evict(5));
        assert!(store.sample(5).is_some());
    }

    #[test]
    fn elastic_quota_changes() {
        let store = SynopsisStore::new(10, 1000);
        assert_eq!(store.warehouse_quota(), 1000);
        store.set_warehouse_quota(10);
        assert_eq!(store.warehouse_quota(), 10);
        store.insert_into_warehouse(2, &sample_payload(50), false);
        assert!(store.warehouse_over_quota());
        assert_eq!(store.warehouse_free_bytes(), 0);
    }

    #[test]
    fn materialized_ids_are_sorted_and_deduped() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(3, &sample_payload(1), false);
        store.insert_into_warehouse(1, &sample_payload(1), false);
        assert_eq!(store.materialized_ids(), vec![1, 3]);
        assert!(store.size_of(3).unwrap() > 0);
        assert!(store.size_of(99).is_none());
    }

    #[test]
    fn tiers_are_exclusive_on_insert() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let payload = sample_payload(10);
        let bytes = match &payload {
            SynopsisPayload::Sample(s) => s.size_bytes(),
            SynopsisPayload::Sketch(s) => s.size_bytes(),
        };
        // Warehouse copy first, then re-insert into the buffer: exactly one
        // copy and one tier's worth of bytes must remain.
        store.insert_into_warehouse(7, &payload, false);
        store.insert_into_buffer(7, &payload, false);
        let usage = store.usage();
        assert_eq!(usage.warehouse_count, 0, "warehouse copy must be removed");
        assert_eq!(usage.warehouse_bytes, 0);
        assert_eq!(usage.buffer_count, 1);
        assert_eq!(usage.buffer_bytes, bytes);
        assert_eq!(store.location(7), Some(SynopsisLocation::Buffer));
        // And the other way around.
        store.insert_into_warehouse(7, &payload, false);
        let usage = store.usage();
        assert_eq!(usage.buffer_count, 0);
        assert_eq!(usage.buffer_bytes, 0);
        assert_eq!(usage.warehouse_count, 1);
        assert_eq!(usage.warehouse_bytes, bytes);
        // A single evict removes the id entirely.
        assert!(store.evict(7));
        assert_eq!(store.location(7), None);
        assert_eq!(store.usage().warehouse_bytes, 0);
    }

    #[test]
    fn reinserting_same_tier_does_not_double_count() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(4, &sample_payload(10), false);
        let once = store.usage().buffer_bytes;
        store.insert_into_buffer(4, &sample_payload(10), false);
        assert_eq!(store.usage().buffer_bytes, once);
        assert_eq!(store.usage().buffer_count, 1);
    }

    #[test]
    fn leased_synopsis_survives_eviction_until_release() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(9, &sample_payload(20), false);
        let lease = store.lease(9).expect("materialized synopsis is leasable");
        assert_eq!(lease.id(), 9);
        assert!(lease.sample().is_some());
        assert!(lease.sketch().is_none());

        // Eviction succeeds logically: the synopsis disappears from
        // locations, listings and byte accounting ...
        assert!(store.evict(9));
        assert_eq!(store.location(9), None);
        assert!(store.materialized_ids().is_empty());
        assert_eq!(store.usage().buffer_bytes, 0);
        assert!(store.size_of(9).is_none());
        assert!(store.lease(9).is_none(), "evicted entries are not leasable");
        // ... but the payload stays readable for the lease holder, charged
        // at the tier it lived in.
        let (_, loc) = store.sample(9).expect("graveyard read");
        assert_eq!(loc, SynopsisLocation::Buffer);
        // A second evict is a no-op: the entry is already logically gone.
        assert!(!store.evict(9));

        // Cloned leases keep it alive too.
        let lease2 = lease.clone();
        drop(lease);
        assert!(store.sample(9).is_some());
        drop(lease2);
        assert!(store.sample(9).is_none(), "last lease drop reaps the entry");
    }

    #[test]
    fn lease_released_without_eviction_leaves_entry_live() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(3, &sample_payload(5), false);
        let lease = store.lease(3).unwrap();
        drop(lease);
        assert_eq!(store.location(3), Some(SynopsisLocation::Warehouse));
        assert!(store.evict(3));
        assert!(store.sample(3).is_none());
    }

    #[test]
    fn lease_follows_promotion_between_tiers() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(11, &sample_payload(8), false);
        let lease = store.lease(11).unwrap();
        assert!(store.promote_to_warehouse(11));
        // Evicting after the move still defers removal to the lease.
        assert!(store.evict(11));
        assert!(store.sample(11).is_some());
        assert_eq!(store.usage().warehouse_bytes, 0);
        drop(lease);
        assert!(store.sample(11).is_none());
    }

    #[test]
    fn pinned_entries_survive_eviction_while_leased() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(6, &sample_payload(4), true);
        let lease = store.lease(6).unwrap();
        assert!(!store.evict(6), "pinned synopses are never evicted");
        drop(lease);
        assert!(store.sample(6).is_some());
        assert_eq!(store.location(6), Some(SynopsisLocation::Warehouse));
    }

    /// A lease pins the *payload matched at plan time*: re-materializing the
    /// same id (same fingerprint, new build) must not change what the lease
    /// holder reads, and releases must never reap the live replacement.
    #[test]
    fn lease_snapshot_survives_rematerialization_of_same_id() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(5, &sample_payload(10), false);
        let lease = store.lease(5).unwrap();
        let (snap, _) = lease.sample().unwrap();
        assert_eq!(snap.len(), 10);

        // Tuner evicts the leased copy, then a concurrent build re-creates
        // the id with a different payload.
        assert!(store.evict(5));
        store.insert_into_buffer(5, &sample_payload(20), false);
        assert_eq!(store.location(5), Some(SynopsisLocation::Buffer));

        // The lease still serves its own snapshot ...
        let (snap2, _) = lease.sample().unwrap();
        assert_eq!(snap2.len(), 10, "lease must pin the matched payload");
        // ... while by-id provider reads resolve to the live replacement.
        let (live, _) = store.sample(5).unwrap();
        assert_eq!(live.len(), 20);

        // A second lease on the live copy, then both drop: the live entry
        // must survive, only the graveyard copy is reaped.
        let lease_live = store.lease(5).unwrap();
        drop(lease);
        drop(lease_live);
        let (live, _) = store.sample(5).unwrap();
        assert_eq!(live.len(), 20, "live replacement must not be reaped");
        assert_eq!(store.location(5), Some(SynopsisLocation::Buffer));
    }

    /// Re-inserting over a *live* leased copy (same tier) parks the displaced
    /// payload for the lease instead of dropping it.
    #[test]
    fn reinsert_over_leased_copy_parks_old_payload() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(8, &sample_payload(10), false);
        let lease = store.lease(8).unwrap();
        store.insert_into_buffer(8, &sample_payload(30), false);
        let (snap, _) = lease.sample().unwrap();
        assert_eq!(snap.len(), 10, "lease snapshot unaffected by re-insert");
        assert_eq!(store.usage().buffer_count, 1, "one live copy");
        drop(lease);
        let (live, _) = store.sample(8).unwrap();
        assert_eq!(live.len(), 30);
    }

    /// The refresh path replaces in place: same tier, pinned flag
    /// preserved, leased old payload parked — and it must never resurrect
    /// an entry that was evicted while the refresh was being computed.
    #[test]
    fn refresh_in_place_respects_tier_eviction_and_leases() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(2, &sample_payload(10), true);
        let lease = store.lease(2).unwrap();

        assert!(store.refresh_in_place(2, &sample_payload(25)));
        assert_eq!(store.location(2), Some(SynopsisLocation::Warehouse));
        let (live, _) = store.sample(2).unwrap();
        assert_eq!(live.len(), 25, "live copy is the refreshed payload");
        let (snap, _) = lease.sample().unwrap();
        assert_eq!(snap.len(), 10, "lease keeps the pre-refresh snapshot");
        // Pinned flag survived the replace: eviction still refuses.
        assert!(!store.evict(2));
        drop(lease);

        // Concurrent eviction wins: a refresh computed against a payload
        // that has since been evicted is dropped, not resurrected.
        store.insert_into_buffer(3, &sample_payload(5), false);
        assert!(store.evict(3));
        assert!(!store.refresh_in_place(3, &sample_payload(9)));
        assert_eq!(store.location(3), None);
        assert!(store.sample(3).is_none());
    }

    #[test]
    fn clones_share_state() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let handle = store.clone();
        handle.insert_into_buffer(1, &sample_payload(3), false);
        assert_eq!(store.location(1), Some(SynopsisLocation::Buffer));
        let lease = store.lease(1).unwrap();
        assert!(handle.evict(1));
        assert!(handle.sample(1).is_some());
        drop(lease);
        assert!(store.sample(1).is_none());
    }
}
