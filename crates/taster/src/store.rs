//! The synopsis buffer and warehouse.
//!
//! Materialized synopses live in one of two tiers (Section III):
//!
//! * the **synopsis buffer** — a fixed-size in-memory cache holding synopses
//!   freshly generated as byproducts of query execution; it decouples the
//!   (expensive) decision to persist a synopsis from the (latency-critical)
//!   query path,
//! * the **synopsis warehouse** — the persistent, quota-bounded store
//!   (HDFS in the paper, a simulated persistent tier here).
//!
//! The store implements [`SynopsisProvider`] so the engine's executor can
//! resolve `SynopsisScan` / `SketchRef::Materialized` nodes directly, and it
//! reports the tier of every hit so reads are charged at the right simulated
//! bandwidth.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use taster_engine::context::{SynopsisLocation, SynopsisProvider};
use taster_engine::SynopsisPayload;
use taster_synopses::sketch_join::SketchJoin;
use taster_synopses::WeightedSample;

use crate::synopsis::SynopsisId;

/// A materialized synopsis payload plus bookkeeping.
#[derive(Debug, Clone)]
struct Stored {
    sample: Option<Arc<WeightedSample>>,
    sketch: Option<Arc<SketchJoin>>,
    bytes: usize,
    pinned: bool,
}

#[derive(Debug, Default)]
struct Tier {
    entries: HashMap<SynopsisId, Stored>,
    used_bytes: usize,
    quota_bytes: usize,
}

impl Tier {
    fn insert(&mut self, id: SynopsisId, stored: Stored) {
        self.used_bytes += stored.bytes;
        if let Some(old) = self.entries.insert(id, stored) {
            self.used_bytes -= old.bytes;
        }
    }

    fn remove(&mut self, id: SynopsisId) -> Option<Stored> {
        let removed = self.entries.remove(&id)?;
        self.used_bytes -= removed.bytes;
        Some(removed)
    }
}

/// Two-tier synopsis store (buffer + warehouse) with byte quotas.
#[derive(Debug)]
pub struct SynopsisStore {
    buffer: RwLock<Tier>,
    warehouse: RwLock<Tier>,
}

/// A snapshot of the store's occupancy, used by the benchmark harnesses
/// (Fig. 6 plots the warehouse size over time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreUsage {
    /// Bytes currently held in the buffer.
    pub buffer_bytes: usize,
    /// Buffer quota.
    pub buffer_quota: usize,
    /// Bytes currently held in the warehouse.
    pub warehouse_bytes: usize,
    /// Warehouse quota.
    pub warehouse_quota: usize,
    /// Number of synopses in the buffer.
    pub buffer_count: usize,
    /// Number of synopses in the warehouse.
    pub warehouse_count: usize,
}

impl SynopsisStore {
    /// Create a store with the given byte quotas.
    pub fn new(buffer_quota_bytes: usize, warehouse_quota_bytes: usize) -> Self {
        Self {
            buffer: RwLock::new(Tier {
                quota_bytes: buffer_quota_bytes,
                ..Default::default()
            }),
            warehouse: RwLock::new(Tier {
                quota_bytes: warehouse_quota_bytes,
                ..Default::default()
            }),
        }
    }

    /// Current occupancy of both tiers.
    pub fn usage(&self) -> StoreUsage {
        let b = self.buffer.read();
        let w = self.warehouse.read();
        StoreUsage {
            buffer_bytes: b.used_bytes,
            buffer_quota: b.quota_bytes,
            warehouse_bytes: w.used_bytes,
            warehouse_quota: w.quota_bytes,
            buffer_count: b.entries.len(),
            warehouse_count: w.entries.len(),
        }
    }

    /// Change the warehouse quota at runtime (storage elasticity). The tuner
    /// is responsible for re-evaluating and evicting afterwards.
    pub fn set_warehouse_quota(&self, bytes: usize) {
        self.warehouse.write().quota_bytes = bytes;
    }

    /// The warehouse quota in bytes.
    pub fn warehouse_quota(&self) -> usize {
        self.warehouse.read().quota_bytes
    }

    /// Where a synopsis currently lives, if materialized at all.
    pub fn location(&self, id: SynopsisId) -> Option<SynopsisLocation> {
        if self.buffer.read().entries.contains_key(&id) {
            return Some(SynopsisLocation::Buffer);
        }
        if self.warehouse.read().entries.contains_key(&id) {
            return Some(SynopsisLocation::Warehouse);
        }
        None
    }

    /// Actual size in bytes of a materialized synopsis.
    pub fn size_of(&self, id: SynopsisId) -> Option<usize> {
        if let Some(s) = self.buffer.read().entries.get(&id) {
            return Some(s.bytes);
        }
        self.warehouse.read().entries.get(&id).map(|s| s.bytes)
    }

    /// Ids of the synopses currently held in the in-memory buffer.
    pub fn buffer_ids(&self) -> Vec<SynopsisId> {
        let mut ids: Vec<SynopsisId> = self.buffer.read().entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of all synopses currently materialized (either tier).
    pub fn materialized_ids(&self) -> Vec<SynopsisId> {
        let mut ids: Vec<SynopsisId> = self
            .buffer
            .read()
            .entries
            .keys()
            .chain(self.warehouse.read().entries.keys())
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Insert a byproduct synopsis into the in-memory buffer.
    pub fn insert_into_buffer(&self, id: SynopsisId, payload: &SynopsisPayload, pinned: bool) {
        let stored = to_stored(payload, pinned);
        self.buffer.write().insert(id, stored);
    }

    /// Insert a synopsis directly into the warehouse (offline pre-built or
    /// promoted from the buffer).
    pub fn insert_into_warehouse(&self, id: SynopsisId, payload: &SynopsisPayload, pinned: bool) {
        let stored = to_stored(payload, pinned);
        self.warehouse.write().insert(id, stored);
    }

    /// Move a synopsis from the buffer to the warehouse, if present.
    pub fn promote_to_warehouse(&self, id: SynopsisId) -> bool {
        let Some(stored) = self.buffer.write().remove(id) else {
            return false;
        };
        self.warehouse.write().insert(id, stored);
        true
    }

    /// Remove a synopsis from wherever it lives. Pinned synopses are never
    /// removed (returns `false`).
    pub fn evict(&self, id: SynopsisId) -> bool {
        {
            let mut buffer = self.buffer.write();
            if let Some(e) = buffer.entries.get(&id) {
                if e.pinned {
                    return false;
                }
                buffer.remove(id);
                return true;
            }
        }
        let mut warehouse = self.warehouse.write();
        if let Some(e) = warehouse.entries.get(&id) {
            if e.pinned {
                return false;
            }
            warehouse.remove(id);
            return true;
        }
        false
    }

    /// `true` if the buffer is over its quota.
    pub fn buffer_over_quota(&self) -> bool {
        let b = self.buffer.read();
        b.used_bytes > b.quota_bytes
    }

    /// `true` if the warehouse is over its quota.
    pub fn warehouse_over_quota(&self) -> bool {
        let w = self.warehouse.read();
        w.used_bytes > w.quota_bytes
    }

    /// Free warehouse space (in bytes) still available under the quota.
    pub fn warehouse_free_bytes(&self) -> usize {
        let w = self.warehouse.read();
        w.quota_bytes.saturating_sub(w.used_bytes)
    }
}

fn to_stored(payload: &SynopsisPayload, pinned: bool) -> Stored {
    match payload {
        SynopsisPayload::Sample(s) => Stored {
            bytes: s.size_bytes(),
            sample: Some(Arc::new(s.clone())),
            sketch: None,
            pinned,
        },
        SynopsisPayload::Sketch(s) => Stored {
            bytes: s.size_bytes(),
            sample: None,
            sketch: Some(Arc::new(s.clone())),
            pinned,
        },
    }
}

impl SynopsisProvider for SynopsisStore {
    fn sample(&self, id: u64) -> Option<(Arc<WeightedSample>, SynopsisLocation)> {
        if let Some(s) = self.buffer.read().entries.get(&id) {
            return s.sample.clone().map(|s| (s, SynopsisLocation::Buffer));
        }
        if let Some(s) = self.warehouse.read().entries.get(&id) {
            return s.sample.clone().map(|s| (s, SynopsisLocation::Warehouse));
        }
        None
    }

    fn sketch(&self, id: u64) -> Option<(Arc<SketchJoin>, SynopsisLocation)> {
        if let Some(s) = self.buffer.read().entries.get(&id) {
            return s.sketch.clone().map(|s| (s, SynopsisLocation::Buffer));
        }
        if let Some(s) = self.warehouse.read().entries.get(&id) {
            return s.sketch.clone().map(|s| (s, SynopsisLocation::Warehouse));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_storage::batch::BatchBuilder;

    fn sample_payload(rows: usize) -> SynopsisPayload {
        let b = BatchBuilder::new()
            .column("x", (0..rows as i64).collect::<Vec<_>>())
            .build()
            .unwrap();
        SynopsisPayload::Sample(WeightedSample {
            rows: b,
            weights: vec![1.0; rows],
            stratification: vec![],
            probability: 1.0,
            source_rows: rows,
        })
    }

    #[test]
    fn buffer_insert_lookup_and_promote() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(1, &sample_payload(10), false);
        assert_eq!(store.location(1), Some(SynopsisLocation::Buffer));
        assert!(store.sample(1).is_some());
        assert!(store.promote_to_warehouse(1));
        assert_eq!(store.location(1), Some(SynopsisLocation::Warehouse));
        let (_, loc) = store.sample(1).unwrap();
        assert_eq!(loc, SynopsisLocation::Warehouse);
        assert!(!store.promote_to_warehouse(1), "already promoted");
    }

    #[test]
    fn quota_accounting_and_eviction() {
        let store = SynopsisStore::new(100, 200);
        store.insert_into_buffer(1, &sample_payload(100), false);
        assert!(store.buffer_over_quota());
        assert!(store.evict(1));
        assert!(!store.buffer_over_quota());
        assert_eq!(store.usage().buffer_bytes, 0);
        assert!(!store.evict(1), "already evicted");
    }

    #[test]
    fn pinned_synopses_survive_eviction() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_warehouse(5, &sample_payload(10), true);
        assert!(!store.evict(5));
        assert!(store.sample(5).is_some());
    }

    #[test]
    fn elastic_quota_changes() {
        let store = SynopsisStore::new(10, 1000);
        assert_eq!(store.warehouse_quota(), 1000);
        store.set_warehouse_quota(10);
        assert_eq!(store.warehouse_quota(), 10);
        store.insert_into_warehouse(2, &sample_payload(50), false);
        assert!(store.warehouse_over_quota());
        assert_eq!(store.warehouse_free_bytes(), 0);
    }

    #[test]
    fn materialized_ids_are_sorted_and_deduped() {
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        store.insert_into_buffer(3, &sample_payload(1), false);
        store.insert_into_warehouse(1, &sample_payload(1), false);
        assert_eq!(store.materialized_ids(), vec![1, 3]);
        assert!(store.size_of(3).unwrap() > 0);
        assert!(store.size_of(99).is_none());
    }
}
