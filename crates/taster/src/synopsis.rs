//! Synopsis descriptors: the logical identity of a synopsis.

use serde::{Deserialize, Serialize};
use taster_engine::sql::ErrorSpec;
use taster_engine::SampleMethod;

/// Unique identifier of a synopsis (candidate or materialized).
pub type SynopsisId = u64;

/// What kind of synopsis a descriptor refers to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SynopsisKind {
    /// A weighted sample of a base relation (or subplan), with the given
    /// sampling method.
    Sample {
        /// Sampler configuration.
        method: SampleMethod,
    },
    /// A sketch-join summary of one join side.
    SketchJoin {
        /// Summarized table.
        table: String,
        /// Join key columns.
        key_columns: Vec<String>,
        /// Value column carried by the sketch (None for COUNT-only).
        value_column: Option<String>,
    },
}

impl SynopsisKind {
    /// Stratification attributes guaranteed by the synopsis (empty for
    /// uniform samples and sketches).
    pub fn stratification(&self) -> Vec<String> {
        match self {
            SynopsisKind::Sample { method } => method.stratification().to_vec(),
            SynopsisKind::SketchJoin { .. } => Vec::new(),
        }
    }

    /// `true` for sketch synopses.
    pub fn is_sketch(&self) -> bool {
        matches!(self, SynopsisKind::SketchJoin { .. })
    }
}

/// The logical definition of a synopsis: which subplan it summarizes, with
/// what guarantees, and how big it is expected to be. This is exactly the
/// per-synopsis record the paper's metadata store keeps (Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynopsisDescriptor {
    /// Identifier.
    pub id: SynopsisId,
    /// Canonical fingerprint of the logical subplan whose results this
    /// synopsis summarizes.
    pub fingerprint: String,
    /// Base relations under the summarized subplan.
    pub base_tables: Vec<String>,
    /// Kind and configuration.
    pub kind: SynopsisKind,
    /// Accuracy guarantee the synopsis was configured for.
    pub accuracy: ErrorSpec,
    /// Estimated size in bytes (refined to the actual size once built).
    pub estimated_bytes: usize,
    /// Estimated number of rows (samples) or summarized rows (sketches).
    pub estimated_rows: usize,
    /// `true` for user-pinned synopses that the tuner must never evict
    /// (Section V, user hints).
    pub pinned: bool,
}

impl SynopsisDescriptor {
    /// Stratification attributes of the synopsis.
    pub fn stratification(&self) -> Vec<String> {
        self.kind.stratification()
    }

    /// The key under which the synopsis is indexed in the metadata store:
    /// its base tables plus, for sketches, the join attributes (Section IV-A
    /// "Subplan matching is expensive. Therefore, Taster utilizes an index
    /// ... using their base relations as the key. In the case of joins, the
    /// join attribute(s) are also included in the key.").
    pub fn index_key(&self) -> String {
        let mut key = self.base_tables.join("+");
        if let SynopsisKind::SketchJoin { key_columns, .. } = &self.kind {
            key.push('|');
            key.push_str(&key_columns.join(","));
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_descriptor() -> SynopsisDescriptor {
        SynopsisDescriptor {
            id: 1,
            fingerprint: "sample(a;scan(t;;*))".into(),
            base_tables: vec!["t".into()],
            kind: SynopsisKind::Sample {
                method: SampleMethod::Distinct {
                    stratification: vec!["a".into()],
                    delta: 10,
                    probability: 0.05,
                },
            },
            accuracy: ErrorSpec::default(),
            estimated_bytes: 1024,
            estimated_rows: 100,
            pinned: false,
        }
    }

    #[test]
    fn stratification_comes_from_kind() {
        assert_eq!(sample_descriptor().stratification(), vec!["a".to_string()]);
        let sketch = SynopsisKind::SketchJoin {
            table: "t".into(),
            key_columns: vec!["k".into()],
            value_column: None,
        };
        assert!(sketch.stratification().is_empty());
        assert!(sketch.is_sketch());
    }

    #[test]
    fn index_key_includes_join_attributes_for_sketches() {
        let mut d = sample_descriptor();
        assert_eq!(d.index_key(), "t");
        d.kind = SynopsisKind::SketchJoin {
            table: "t".into(),
            key_columns: vec!["k1".into(), "k2".into()],
            value_column: Some("v".into()),
        };
        assert_eq!(d.index_key(), "t|k1,k2");
    }
}
