//! The continuous synopsis tuner (Section V).
//!
//! The tuner solves two problems at every query: which plan to execute now,
//! and which set of synopses `S` to keep (subject to the warehouse space
//! quota) so that the gain over the next `w` queries is maximized. Because
//! the future queries are unknown, the last `w` queries stand in for them.
//! The objective `gain(Q, S)` is monotone submodular, so a greedy algorithm
//! achieves a constant-factor approximation (\[27\] in the paper); following
//! CELF we take the better of plain-benefit greedy and benefit-per-byte
//! greedy.
//!
//! The window length `w` itself adapts: the tuner periodically evaluates
//! which of `w⁻ = ⌊(1-α)·w⌋`, `w`, `w⁺ = ⌈(1+α)·w⌉` would have served the
//! most recent queries best, and switches to it.

use std::collections::HashSet;

use taster_engine::context::SynopsisLocation;

use crate::config::TasterConfig;
use crate::metadata::{MetadataStore, QueryRecord};
use crate::planner::PlannerOutput;
use crate::store::SynopsisStore;
use crate::synopsis::SynopsisId;

/// Which plan the tuner chose for the current query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenPlan {
    /// Execute the exact (synopsis-free) plan.
    Exact,
    /// Execute the candidate at this index in the planner output.
    Candidate(usize),
}

/// The tuner's decision for one query.
#[derive(Debug, Clone)]
pub struct TunerDecision {
    /// The plan to execute.
    pub chosen: ChosenPlan,
    /// The synopsis set `S` to retain in the warehouse.
    pub keep: Vec<SynopsisId>,
    /// Materialized synopses to evict (not in `S`, not pinned).
    pub evict: Vec<SynopsisId>,
    /// The window length used for this decision.
    pub window: usize,
}

/// What to do about stale synopses: refresh these in place, evict those.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshActions {
    /// Synopses to refresh incrementally (absorb the appended rows).
    pub refresh: Vec<SynopsisId>,
    /// Stale synopses whose projected refreshed size no longer fits; evict.
    pub evict: Vec<SynopsisId>,
}

/// The continuous tuner.
#[derive(Debug)]
pub struct Tuner {
    window: usize,
    alpha: f64,
    adaptive: bool,
    queries_since_adaptation: usize,
    /// History of window values, kept so experiments can report how `w`
    /// evolved (the paper observes it fluctuating between 12 and 17).
    window_history: Vec<usize>,
}

impl Tuner {
    /// Create a tuner from the engine configuration.
    pub fn new(config: &TasterConfig) -> Self {
        Self {
            window: config.initial_window.max(1),
            alpha: config.window_alpha.clamp(0.01, 0.9),
            adaptive: config.adaptive_window,
            queries_since_adaptation: 0,
            window_history: vec![config.initial_window.max(1)],
        }
    }

    /// The current window length `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The history of window lengths over time.
    pub fn window_history(&self) -> &[usize] {
        &self.window_history
    }

    /// Restore the adapted window (and its history) from durable state, so a
    /// recovered engine resumes tuning where the crashed one left off instead
    /// of re-learning the window from the initial value.
    pub fn restore_window(&mut self, window: usize, history: Vec<usize>) {
        self.window = window.max(1);
        if !history.is_empty() {
            self.window_history = history;
        }
        self.queries_since_adaptation = 0;
    }

    /// Make the decision for the current query: choose a plan, and choose the
    /// synopsis set to keep under the warehouse quota.
    pub fn decide(
        &mut self,
        output: &PlannerOutput,
        metadata: &MetadataStore,
        store: &SynopsisStore,
    ) -> TunerDecision {
        self.maybe_adapt_window(metadata, store);

        let budget = store.warehouse_quota();
        let recent: Vec<&QueryRecord> = metadata.recent_queries(self.window);
        let keep = select_synopses(&recent, metadata, store, budget);
        let keep_set: HashSet<SynopsisId> = keep.iter().copied().collect();

        // Evict everything materialized that did not make the cut.
        let evict: Vec<SynopsisId> = store
            .materialized_ids()
            .into_iter()
            .filter(|id| !keep_set.contains(id))
            .filter(|id| {
                metadata
                    .get(*id)
                    .map(|m| !m.descriptor.pinned)
                    .unwrap_or(true)
            })
            .collect();

        // Choose the plan for the query at hand. Candidates that only
        // *create* synopses are always executable; candidates that *reuse*
        // synopses need them to still be materialized after eviction.
        //
        // The tuner optimizes long-term throughput, not only this query
        // (Section V): a plan whose byproduct synopsis made it into the
        // keep-set is credited with part of the benefit that synopsis is
        // expected to deliver to a future query, so Taster is willing to pay
        // a small online-materialization overhead now to avoid base-table
        // scans later.
        let mut chosen = ChosenPlan::Exact;
        let mut best_cost = output.exact_cost_ns;
        for (i, cand) in output.candidates.iter().enumerate() {
            let usable = cand.uses.iter().all(|id| {
                keep_set.contains(id) || store.location(*id).is_some() && !evict.contains(id)
            });
            if !usable {
                continue;
            }
            let creates_kept = !cand.creates.is_empty()
                && cand.creates.iter().all(|id| keep_set.contains(id));
            let credit = if creates_kept {
                0.5 * (output.exact_cost_ns - cand.future_cost_ns).max(0.0)
            } else {
                0.0
            };
            let effective = cand.cost_ns - credit;
            if effective < best_cost {
                best_cost = effective;
                chosen = ChosenPlan::Candidate(i);
            }
        }

        self.queries_since_adaptation += 1;
        TunerDecision {
            chosen,
            keep,
            evict,
            window: self.window,
        }
    }

    /// Re-evaluate the synopsis set after an external change (storage
    /// elasticity: the administrator changed the quota at runtime).
    pub fn reevaluate(
        &mut self,
        metadata: &MetadataStore,
        store: &SynopsisStore,
    ) -> Vec<SynopsisId> {
        let recent: Vec<&QueryRecord> = metadata.recent_queries(self.window);
        let keep = select_synopses(&recent, metadata, store, store.warehouse_quota());
        let keep_set: HashSet<SynopsisId> = keep.iter().copied().collect();
        store
            .materialized_ids()
            .into_iter()
            .filter(|id| !keep_set.contains(id))
            .filter(|id| {
                metadata
                    .get(*id)
                    .map(|m| !m.descriptor.pinned)
                    .unwrap_or(true)
            })
            .collect()
    }

    /// Materialized, unpinned synopses in **ascending usefulness** order —
    /// the order in which fallback eviction (storage elasticity shrinking the
    /// quota below what the keep-set needs) should proceed, least useful
    /// first.
    ///
    /// Usefulness is the benefit-per-byte the synopsis alone delivers over
    /// the tuner's current window (the same gain the greedy selection
    /// optimizes, restricted to a singleton set); ties break by id,
    /// ascending, so the order is deterministic.
    pub fn usefulness_order(
        &self,
        metadata: &MetadataStore,
        store: &SynopsisStore,
    ) -> Vec<SynopsisId> {
        let recent: Vec<&QueryRecord> = metadata.recent_queries(self.window);
        let mut scored: Vec<(f64, SynopsisId)> = store
            .materialized_ids()
            .into_iter()
            .filter(|id| {
                metadata
                    .get(*id)
                    .map(|m| !m.descriptor.pinned)
                    .unwrap_or(true)
            })
            .map(|id| {
                let gain: f64 = recent.iter().map(|q| q.gain_given(&|s| s == id)).sum();
                let bytes = store
                    .size_of(id)
                    .or_else(|| metadata.get(id).map(|m| m.size_bytes()))
                    .unwrap_or(1)
                    .max(1);
                (gain / bytes as f64, id)
            })
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Decide what to do about **stale** materialized synopses (online
    /// ingestion): for every synopsis whose base table has grown past
    /// `max_staleness`, either refresh it in place or evict it.
    ///
    /// Refresh competes with build/evict under the same storage budget: the
    /// refreshed payload will cover `rows_now` rows, so its size is projected
    /// by the growth factor, and when the projected *growth* no longer fits
    /// the free space of the synopsis's tier the synopsis is evicted instead
    /// (the next query that wants it will register a rebuild candidate, and
    /// the ordinary keep/evict selection decides whether it earns its bytes
    /// back). Pinned synopses are always refreshed — the user promised they
    /// are useful, and the tuner may never drop them.
    ///
    /// `rows_of` maps a base-table name to its current row count and
    /// `deletes_of` to its monotonic mutation counter (the engine passes
    /// catalog lookups). Staleness combines append drift with the
    /// deletion-fraction term: sketches cannot subtract deleted rows and
    /// samples only *approximately* reweight, so both must be rebuilt before
    /// drifted estimates are served. Distinct samples are scheduled for
    /// refresh on **any** deletion advance regardless of the bound — a single
    /// delete batch can empty a stratum below its δ row guarantee, which no
    /// weight correction restores. Multi-table synopses are skipped: nothing
    /// in the planner produces them today, and a partial refresh would be
    /// wrong.
    pub fn refresh_actions(
        &self,
        metadata: &MetadataStore,
        store: &SynopsisStore,
        rows_of: &dyn Fn(&str) -> Option<usize>,
        deletes_of: &dyn Fn(&str) -> Option<u64>,
        max_staleness: f64,
    ) -> RefreshActions {
        let mut actions = RefreshActions::default();
        for id in store.materialized_ids() {
            let Some(meta) = metadata.get(id) else {
                continue;
            };
            let [table] = &meta.descriptor.base_tables[..] else {
                continue;
            };
            let Some(rows_now) = rows_of(table) else {
                continue;
            };
            let deletes_now = deletes_of(table).unwrap_or(meta.deletes_at_build);
            let distinct_lost_delta = meta.deletion_staleness(deletes_now) > 0.0
                && matches!(
                    &meta.descriptor.kind,
                    crate::synopsis::SynopsisKind::Sample {
                        method: taster_engine::SampleMethod::Distinct { .. }
                    }
                );
            if !distinct_lost_delta
                && meta.total_staleness(rows_now, deletes_now) <= max_staleness + 1e-12
            {
                continue;
            }
            let current = store.size_of(id).unwrap_or(0);
            let built = meta.rows_at_build.unwrap_or(0).max(1);
            let projected =
                ((current as f64) * (rows_now as f64 / built as f64)).ceil() as usize;
            let free = match store.location(id) {
                Some(SynopsisLocation::Warehouse) => store.warehouse_free_bytes(),
                // Buffer entries are transient byproducts; the buffer policy
                // (promote or drop) runs after every query anyway.
                _ => usize::MAX,
            };
            if meta.descriptor.pinned || projected.saturating_sub(current) <= free {
                actions.refresh.push(id);
            } else {
                actions.evict.push(id);
            }
        }
        actions.refresh.sort_unstable();
        actions.evict.sort_unstable();
        actions
    }

    /// Periodically (every `w` queries) check whether a smaller or larger
    /// window would have produced a better synopsis set for the most recent
    /// queries, and adopt it.
    fn maybe_adapt_window(&mut self, metadata: &MetadataStore, store: &SynopsisStore) {
        if !self.adaptive || self.queries_since_adaptation < self.window {
            return;
        }
        self.queries_since_adaptation = 0;

        let w_minus = (((1.0 - self.alpha) * self.window as f64).floor() as usize).max(2);
        let w_plus = ((1.0 + self.alpha) * self.window as f64).ceil() as usize;
        let candidates = [w_minus, self.window, w_plus];

        // Evaluate each candidate window: select synopses using queries
        // *before* the most recent w, then measure the cost of the most
        // recent w queries under that selection.
        let eval_horizon = self.window;
        let history = metadata.recent_queries(self.window * 3 + eval_horizon);
        if history.len() <= eval_horizon + 2 {
            return;
        }
        let (train, test) = history.split_at(history.len() - eval_horizon);
        let budget = store.warehouse_quota();

        let mut best_w = self.window;
        let mut best_cost = f64::INFINITY;
        for &w in &candidates {
            let train_window: Vec<&QueryRecord> =
                train.iter().rev().take(w).rev().copied().collect();
            let selection = select_synopses(&train_window, metadata, store, budget);
            let set: HashSet<SynopsisId> = selection.into_iter().collect();
            let cost: f64 = test
                .iter()
                .map(|q| q.cost_given(&|id| set.contains(&id)))
                .sum();
            if cost < best_cost - 1e-6 {
                best_cost = cost;
                best_w = w;
            }
        }
        self.window = best_w.max(2);
        self.window_history.push(self.window);
    }
}

/// Greedy submodular selection of the synopsis set under a byte budget.
///
/// Runs both plain-benefit greedy and benefit-per-byte greedy and returns the
/// selection with the larger total gain (the CELF-style guarantee of
/// `(1 − 1/e)/2` from the paper's reference \[27\]). Pinned synopses are always
/// part of the selection and consume budget first.
pub fn select_synopses(
    window: &[&QueryRecord],
    metadata: &MetadataStore,
    store: &SynopsisStore,
    budget_bytes: usize,
) -> Vec<SynopsisId> {
    // Universe: every synopsis referenced by any alternative in the window,
    // plus everything currently materialized (it may still serve queries
    // outside the window).
    let mut universe: HashSet<SynopsisId> = HashSet::new();
    for q in window {
        for alt in &q.alternatives {
            universe.extend(alt.synopses.iter().copied());
        }
    }
    universe.extend(store.materialized_ids());
    // Pinned (user-hinted) synopses are part of the selection even when no
    // recent query referenced them — the user promised they will be useful.
    for id in metadata.synopsis_ids() {
        if metadata
            .get(id)
            .map(|m| m.descriptor.pinned)
            .unwrap_or(false)
        {
            universe.insert(id);
        }
    }

    let size_of = |id: SynopsisId| -> usize {
        store
            .size_of(id)
            .or_else(|| metadata.get(id).map(|m| m.size_bytes()))
            .unwrap_or(usize::MAX / 4)
    };

    // Pinned synopses are mandatory.
    let mut pinned: Vec<SynopsisId> = universe
        .iter()
        .copied()
        .filter(|id| metadata.get(*id).map(|m| m.descriptor.pinned).unwrap_or(false))
        .collect();
    pinned.sort_unstable();
    let pinned_bytes: usize = pinned.iter().map(|&id| size_of(id)).sum();
    let budget = budget_bytes.saturating_sub(pinned_bytes);

    let candidates: Vec<SynopsisId> = universe
        .iter()
        .copied()
        .filter(|id| !pinned.contains(id))
        .collect();

    let gain_of_set = |set: &HashSet<SynopsisId>| -> f64 {
        window
            .iter()
            .map(|q| q.gain_given(&|id| set.contains(&id) || pinned.contains(&id)))
            .sum()
    };

    let run_greedy = |per_byte: bool| -> (Vec<SynopsisId>, f64) {
        let mut selected: Vec<SynopsisId> = Vec::new();
        let mut selected_set: HashSet<SynopsisId> = HashSet::new();
        let mut used = 0usize;
        let mut current_gain = gain_of_set(&selected_set);
        loop {
            let mut best: Option<(SynopsisId, f64, usize)> = None;
            for &id in &candidates {
                if selected_set.contains(&id) {
                    continue;
                }
                let size = size_of(id);
                if used + size > budget {
                    continue;
                }
                let mut with = selected_set.clone();
                with.insert(id);
                let marginal = gain_of_set(&with) - current_gain;
                if marginal <= 1e-9 {
                    continue;
                }
                let score = if per_byte {
                    marginal / size.max(1) as f64
                } else {
                    marginal
                };
                match best {
                    Some((_, best_score, _)) if best_score >= score => {}
                    _ => best = Some((id, score, size)),
                }
            }
            let Some((id, _, size)) = best else { break };
            selected.push(id);
            selected_set.insert(id);
            used += size;
            current_gain = gain_of_set(&selected_set);
        }
        (selected, current_gain)
    };

    let (by_gain, g1) = run_greedy(false);
    let (by_density, g2) = run_greedy(true);
    let mut chosen = if g2 > g1 { by_density } else { by_gain };
    chosen.extend(pinned);
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::PlanAlternative;
    use crate::synopsis::{SynopsisDescriptor, SynopsisKind};
    use taster_engine::sql::ErrorSpec;
    use taster_engine::SampleMethod;

    fn register(md: &mut MetadataStore, bytes: usize, pinned: bool) -> SynopsisId {
        let id = md.allocate_id();
        md.register(SynopsisDescriptor {
            id,
            fingerprint: format!("fp-{id}"),
            base_tables: vec!["t".into()],
            kind: SynopsisKind::Sample {
                method: SampleMethod::Uniform { probability: 0.1 },
            },
            accuracy: ErrorSpec::default(),
            estimated_bytes: bytes,
            estimated_rows: 10,
            pinned,
        })
    }

    fn record(md: &mut MetadataStore, exact: f64, alts: Vec<(Vec<SynopsisId>, f64)>) {
        let alternatives = alts
            .into_iter()
            .map(|(synopses, cost_ns)| PlanAlternative { synopses, cost_ns })
            .collect();
        md.record_query(exact, alternatives);
    }

    #[test]
    fn greedy_respects_budget_and_prefers_high_gain() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1000);
        let a = register(&mut md, 600, false); // big, high gain
        let b = register(&mut md, 300, false); // small, medium gain
        let c = register(&mut md, 300, false); // small, small gain
        // Three query families, each served by a different synopsis.
        for _ in 0..3 {
            record(&mut md, 100.0, vec![(vec![a], 10.0)]);
            record(&mut md, 100.0, vec![(vec![b], 40.0)]);
            record(&mut md, 100.0, vec![(vec![c], 90.0)]);
        }
        let window: Vec<&QueryRecord> = md.recent_queries(9);
        let keep = select_synopses(&window, &md, &store, 1000);
        assert!(keep.contains(&a));
        assert!(keep.contains(&b));
        assert!(!keep.contains(&c), "budget exhausted after a+b");
        let total: usize = keep
            .iter()
            .map(|id| md.get(*id).unwrap().size_bytes())
            .sum();
        assert!(total <= 1000);
    }

    #[test]
    fn density_greedy_wins_when_big_item_crowds_out_better_combo() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1000);
        let big = register(&mut md, 1000, false);
        let s1 = register(&mut md, 400, false);
        let s2 = register(&mut md, 400, false);
        // big gives 50 gain; s1+s2 give 40+40=80 but each alone gives 40.
        for _ in 0..3 {
            record(
                &mut md,
                100.0,
                vec![(vec![big], 50.0), (vec![s1], 60.0), (vec![s2], 60.0)],
            );
        }
        let window: Vec<&QueryRecord> = md.recent_queries(3);
        let keep = select_synopses(&window, &md, &store, 1000);
        // Either selection is a valid approximation, but it must fit.
        let total: usize = keep
            .iter()
            .map(|id| md.get(*id).unwrap().size_bytes())
            .sum();
        assert!(total <= 1000);
        assert!(!keep.is_empty());
    }

    #[test]
    fn pinned_synopses_are_always_kept() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 500);
        let pinned = register(&mut md, 400, true);
        let other = register(&mut md, 400, false);
        record(&mut md, 100.0, vec![(vec![other], 1.0)]);
        let window: Vec<&QueryRecord> = md.recent_queries(1);
        let keep = select_synopses(&window, &md, &store, 500);
        assert!(keep.contains(&pinned));
        assert!(!keep.contains(&other), "no budget left after the pinned one");
    }

    #[test]
    fn decide_picks_cheapest_usable_plan_and_evicts_losers() {
        use crate::planner::{CandidatePlan, PlannerOutput};
        use taster_engine::{parse_query, LogicalPlan};

        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 10_000);
        let good = register(&mut md, 100, false);
        // Materialize a synopsis that nothing in the window wants: it must be
        // evicted.
        let stale = register(&mut md, 100, false);
        let rows = taster_storage::batch::BatchBuilder::new()
            .column("x", vec![1i64])
            .build()
            .unwrap();
        store.insert_into_warehouse(
            stale,
            &taster_engine::SynopsisPayload::Sample(taster_synopses::WeightedSample {
                rows,
                weights: vec![1.0],
                stratification: vec![],
                probability: 1.0,
                source_rows: 1,
            }),
            false,
        );

        for _ in 0..5 {
            record(&mut md, 100.0, vec![(vec![good], 20.0)]);
        }

        let query = parse_query("SELECT COUNT(*) FROM t").unwrap();
        let output = PlannerOutput {
            query,
            exact_plan: LogicalPlan::Scan {
                table: "t".into(),
                filter: None,
                projection: None,
                access: None,
            },
            exact_cost_ns: 100.0,
            exact_rows: 1.0,
            candidates: vec![CandidatePlan {
                plan: LogicalPlan::Scan {
                    table: "t".into(),
                    filter: None,
                    projection: None,
                    access: None,
                },
                uses: vec![],
                creates: vec![good],
                cost_ns: 20.0,
                future_cost_ns: 20.0,
                future_plan: None,
                description: "create".into(),
                leases: vec![],
                est_rows: 0.0,
            }],
            scan_encodings: vec![],
        };

        let mut tuner = Tuner::new(&TasterConfig::default());
        let decision = tuner.decide(&output, &md, &store);
        assert_eq!(decision.chosen, ChosenPlan::Candidate(0));
        assert!(decision.keep.contains(&good));
        assert!(decision.evict.contains(&stale));
    }

    #[test]
    fn window_adapts_when_enough_history_exists() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let s = register(&mut md, 100, false);
        let mut config = TasterConfig {
            initial_window: 4,
            ..TasterConfig::default()
        };
        config.adaptive_window = true;
        let mut tuner = Tuner::new(&config);

        let query = taster_engine::parse_query("SELECT COUNT(*) FROM t").unwrap();
        let output = PlannerOutput {
            query,
            exact_plan: taster_engine::LogicalPlan::Scan {
                table: "t".into(),
                filter: None,
                projection: None,
                access: None,
            },
            exact_cost_ns: 100.0,
            exact_rows: 1.0,
            candidates: vec![],
            scan_encodings: vec![],
        };
        for _ in 0..40 {
            record(&mut md, 100.0, vec![(vec![s], 10.0)]);
            tuner.decide(&output, &md, &store);
        }
        assert!(tuner.window_history().len() > 1, "window never re-evaluated");
        assert!(tuner.window() >= 2);
    }

    /// Refresh competes with evict under the storage budget: a stale synopsis
    /// is refreshed while its projected growth fits the warehouse, evicted
    /// once it does not; pinned synopses always refresh.
    #[test]
    fn refresh_actions_respect_staleness_bound_and_budget() {
        let payload = |rows: usize| {
            let b = taster_storage::batch::BatchBuilder::new()
                .column("x", (0..rows as i64).collect::<Vec<_>>())
                .build()
                .unwrap();
            taster_engine::SynopsisPayload::Sample(taster_synopses::WeightedSample {
                rows: b,
                weights: vec![1.0; rows],
                stratification: vec![],
                probability: 1.0,
                source_rows: rows,
            })
        };

        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let fresh = register(&mut md, 100, false);
        let stale = register(&mut md, 100, false);
        store.insert_into_warehouse(fresh, &payload(10), false);
        store.insert_into_warehouse(stale, &payload(10), false);
        md.set_build_snapshot(fresh, 1_000);
        md.set_build_snapshot(stale, 500);

        let tuner = Tuner::new(&TasterConfig::default());
        // Table at 1000 rows: `stale` has seen only half of them.
        let rows_of = |_: &str| Some(1_000usize);
        let deletes_of = |_: &str| Some(0u64);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &deletes_of, 0.2);
        assert_eq!(actions.refresh, vec![stale]);
        assert!(actions.evict.is_empty());

        // Shrink the warehouse quota so the projected 2x growth cannot fit:
        // the stale synopsis must be evicted instead of refreshed.
        let used = store.usage().warehouse_bytes;
        store.set_warehouse_quota(used);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &deletes_of, 0.2);
        assert_eq!(actions.evict, vec![stale]);
        assert!(actions.refresh.is_empty());

        // A pinned synopsis refreshes even without budget headroom.
        let pinned = register(&mut md, 100, true);
        store.insert_into_warehouse(pinned, &payload(10), true);
        md.set_build_snapshot(pinned, 500);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &deletes_of, 0.2);
        assert!(actions.refresh.contains(&pinned));
        assert!(!actions.evict.contains(&pinned));
    }

    /// Deletion drift counts toward staleness even when the table never
    /// grew, and a distinct sample is scheduled on *any* delete delta — its
    /// δ per-stratum guarantee cannot be restored by reweighting.
    #[test]
    fn refresh_actions_account_for_deletion_drift() {
        let payload = |rows: usize| {
            let b = taster_storage::batch::BatchBuilder::new()
                .column("x", (0..rows as i64).collect::<Vec<_>>())
                .build()
                .unwrap();
            taster_engine::SynopsisPayload::Sample(taster_synopses::WeightedSample {
                rows: b,
                weights: vec![1.0; rows],
                stratification: vec![],
                probability: 1.0,
                source_rows: rows,
            })
        };
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let uniform = register(&mut md, 100, false);
        store.insert_into_warehouse(uniform, &payload(10), false);
        md.set_build_snapshot(uniform, 1_000);

        let did = md.allocate_id();
        let distinct = md.register(SynopsisDescriptor {
            id: did,
            fingerprint: "fp-distinct".into(),
            base_tables: vec!["t".into()],
            kind: SynopsisKind::Sample {
                method: SampleMethod::Distinct {
                    stratification: vec!["x".into()],
                    delta: 10,
                    probability: 0.5,
                },
            },
            accuracy: ErrorSpec::default(),
            estimated_bytes: 100,
            estimated_rows: 10,
            pinned: false,
        });
        store.insert_into_warehouse(distinct, &payload(10), false);
        md.set_build_snapshot(distinct, 1_000);

        let tuner = Tuner::new(&TasterConfig::default());
        let rows_of = |_: &str| Some(1_000usize);

        // No deletes: nothing is stale.
        let none = |_: &str| Some(0u64);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &none, 0.2);
        assert!(actions.refresh.is_empty() && actions.evict.is_empty());

        // 5% of covered rows deleted: below the 20% bound for the uniform
        // sample, but the distinct sample must refresh anyway.
        let few = |_: &str| Some(50u64);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &few, 0.2);
        assert_eq!(actions.refresh, vec![distinct]);

        // 30% deleted: now both cross the bound, with no append growth.
        let many = |_: &str| Some(300u64);
        let actions = tuner.refresh_actions(&md, &store, &rows_of, &many, 0.2);
        assert_eq!(actions.refresh, vec![uniform, distinct]);
    }

    #[test]
    fn reevaluate_evicts_everything_when_quota_drops_to_zero() {
        let mut md = MetadataStore::new();
        let store = SynopsisStore::new(1 << 20, 1 << 20);
        let id = register(&mut md, 100, false);
        let rows = taster_storage::batch::BatchBuilder::new()
            .column("x", vec![1i64])
            .build()
            .unwrap();
        store.insert_into_warehouse(
            id,
            &taster_engine::SynopsisPayload::Sample(taster_synopses::WeightedSample {
                rows,
                weights: vec![1.0],
                stratification: vec![],
                probability: 1.0,
                source_rows: 1,
            }),
            false,
        );
        record(&mut md, 100.0, vec![(vec![id], 10.0)]);
        let mut tuner = Tuner::new(&TasterConfig::default());
        store.set_warehouse_quota(0);
        let evict = tuner.reevaluate(&md, &store);
        assert!(evict.contains(&id));
    }
}
