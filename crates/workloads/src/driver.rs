//! Workload drivers: templates, random sequences and epoch sequences.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A parameterized query template. Instantiating it with a random generator
/// produces concrete SQL with randomized predicate values.
pub struct QueryTemplate {
    /// Template identifier (e.g. "tpch-q6", "sketch-1").
    pub id: String,
    generator: Box<dyn Fn(&mut SmallRng) -> String + Send + Sync>,
}

impl QueryTemplate {
    /// Create a template from a generator closure.
    pub fn new(
        id: impl Into<String>,
        generator: impl Fn(&mut SmallRng) -> String + Send + Sync + 'static,
    ) -> Self {
        Self {
            id: id.into(),
            generator: Box::new(generator),
        }
    }

    /// Instantiate the template with random predicate values.
    pub fn instantiate(&self, rng: &mut SmallRng) -> String {
        (self.generator)(rng)
    }
}

impl std::fmt::Debug for QueryTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueryTemplate({})", self.id)
    }
}

/// One concrete query of a workload sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInstance {
    /// The template this query was instantiated from.
    pub template_id: String,
    /// The SQL text.
    pub sql: String,
}

/// A named workload: a set of templates over a schema registered elsewhere.
pub struct Workload {
    /// Workload name ("tpch", "tpcds", "instacart").
    pub name: String,
    /// The available templates.
    pub templates: Vec<QueryTemplate>,
}

impl Workload {
    /// Find a template by id.
    pub fn template(&self, id: &str) -> Option<&QueryTemplate> {
        self.templates.iter().find(|t| t.id == id)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Workload({}, {} templates)", self.name, self.templates.len())
    }
}

/// Generate `n` queries by picking templates uniformly at random and
/// randomizing their predicates (the Fig. 3 / Fig. 8 methodology).
pub fn random_sequence(workload: &Workload, n: usize, seed: u64) -> Vec<QueryInstance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let t = &workload.templates[rng.random_range(0..workload.templates.len())];
            QueryInstance {
                template_id: t.id.clone(),
                sql: t.instantiate(&mut rng),
            }
        })
        .collect()
}

/// Generate an epoch-structured sequence (the Fig. 6 methodology): each epoch
/// draws `per_epoch` queries from its own subset of template ids.
pub fn epoch_sequence(
    workload: &Workload,
    epochs: &[Vec<&str>],
    per_epoch: usize,
    seed: u64,
) -> Vec<QueryInstance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(epochs.len() * per_epoch);
    for epoch in epochs {
        let templates: Vec<&QueryTemplate> = epoch
            .iter()
            .filter_map(|id| workload.template(id))
            .collect();
        assert!(
            !templates.is_empty(),
            "epoch references no known templates: {epoch:?}"
        );
        for _ in 0..per_epoch {
            let t = templates[rng.random_range(0..templates.len())];
            out.push(QueryInstance {
                template_id: t.id.clone(),
                sql: t.instantiate(&mut rng),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> Workload {
        Workload {
            name: "test".into(),
            templates: vec![
                QueryTemplate::new("a", |rng| {
                    format!("SELECT COUNT(*) FROM t WHERE x = {}", rng.random_range(0..10))
                }),
                QueryTemplate::new("b", |_| "SELECT SUM(v) FROM t".to_string()),
            ],
        }
    }

    #[test]
    fn random_sequence_is_deterministic_per_seed() {
        let w = workload();
        let a = random_sequence(&w, 20, 7);
        let b = random_sequence(&w, 20, 7);
        let c = random_sequence(&w, 20, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
        assert!(a.iter().any(|q| q.template_id == "a"));
        assert!(a.iter().any(|q| q.template_id == "b"));
    }

    #[test]
    fn epoch_sequence_respects_epoch_membership() {
        let w = workload();
        let seq = epoch_sequence(&w, &[vec!["a"], vec!["b"]], 5, 1);
        assert_eq!(seq.len(), 10);
        assert!(seq[..5].iter().all(|q| q.template_id == "a"));
        assert!(seq[5..].iter().all(|q| q.template_id == "b"));
    }

    #[test]
    fn template_lookup() {
        let w = workload();
        assert!(w.template("a").is_some());
        assert!(w.template("zzz").is_none());
    }
}
