//! Instacart-style online-grocery dataset and the Table I micro-benchmark.
//!
//! The paper's micro-benchmark (Table I) runs eight templates over an online
//! grocery schema: `orderproducts` (the fact) joined with `orders`,
//! `products`, `departments` and `aisles`. Four templates are sketch-friendly
//! (grouping on the probe/dimension side, COUNT aggregates) and four are
//! sample-friendly. Variables in the templates are randomized per query.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, Table};

use crate::driver::{QueryTemplate, Workload};

/// Scale configuration for the instacart-like generator.
#[derive(Debug, Clone, Copy)]
pub struct InstacartScale {
    /// Rows of the `orderproducts` fact table.
    pub orderproducts_rows: usize,
    /// Partitions of the fact table.
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InstacartScale {
    fn default() -> Self {
        Self {
            orderproducts_rows: 40_000,
            partitions: 8,
            seed: 11,
        }
    }
}

/// Number of distinct departments in the generated catalog.
pub const NUM_DEPARTMENTS: usize = 21;
/// Number of distinct aisles in the generated catalog.
pub const NUM_AISLES: usize = 134;

/// Generate the instacart-like dataset into a fresh catalog.
pub fn generate(scale: InstacartScale) -> Arc<Catalog> {
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let catalog = Catalog::new();

    let n_op = scale.orderproducts_rows.max(1_000);
    let n_orders = (n_op / 8).max(100);
    let n_products = (n_op / 40).max(100);

    // departments / aisles dimensions.
    let departments = BatchBuilder::new()
        .column("d_dept_id", (0..NUM_DEPARTMENTS as i64).collect::<Vec<_>>())
        .column(
            "d_department",
            (0..NUM_DEPARTMENTS)
                .map(|i| format!("department_{i}"))
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    catalog.register(Table::from_batch("departments", departments, 1).unwrap());

    let aisles = BatchBuilder::new()
        .column("a_aisle_id", (0..NUM_AISLES as i64).collect::<Vec<_>>())
        .column(
            "a_aisle",
            (0..NUM_AISLES).map(|i| format!("aisle_{i}")).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    catalog.register(Table::from_batch("aisles", aisles, 1).unwrap());

    // products.
    let mut p_name = Vec::with_capacity(n_products);
    let mut p_dept = Vec::with_capacity(n_products);
    let mut p_aisle = Vec::with_capacity(n_products);
    for i in 0..n_products {
        p_name.push(format!("product_{}", i % 500));
        p_dept.push(rng.random_range(0..NUM_DEPARTMENTS as i64));
        p_aisle.push(rng.random_range(0..NUM_AISLES as i64));
    }
    let products = BatchBuilder::new()
        .column("p_product_id", (0..n_products as i64).collect::<Vec<_>>())
        .column("p_product_name", p_name)
        .column("p_dept_id", p_dept)
        .column("p_aisle_id", p_aisle)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("products", products, 1).unwrap());

    // orders.
    let mut o_dow = Vec::with_capacity(n_orders);
    let mut o_hod = Vec::with_capacity(n_orders);
    for _ in 0..n_orders {
        o_dow.push(rng.random_range(0..7i64));
        // Hour-of-day skewed towards daytime shopping.
        o_hod.push((8 + rng.random_range(0..14)) as i64);
    }
    let orders = BatchBuilder::new()
        .column("o_order_id", (0..n_orders as i64).collect::<Vec<_>>())
        .column("o_order_dow", o_dow)
        .column("o_order_hod", o_hod)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("orders", orders, 2).unwrap());

    // orderproducts: the fact table. A few products are extremely popular
    // (bananas...), producing the skew that makes sketches attractive.
    let mut op_order = Vec::with_capacity(n_op);
    let mut op_product = Vec::with_capacity(n_op);
    let mut op_reordered = Vec::with_capacity(n_op);
    let mut op_cart_pos = Vec::with_capacity(n_op);
    for _ in 0..n_op {
        op_order.push(rng.random_range(0..n_orders as i64));
        let p = if rng.random_range(0..5) == 0 {
            rng.random_range(0..20.min(n_products) as i64)
        } else {
            rng.random_range(0..n_products as i64)
        };
        op_product.push(p);
        op_reordered.push(rng.random_range(0..2i64));
        op_cart_pos.push(rng.random_range(1..30) as f64);
    }
    let orderproducts = BatchBuilder::new()
        .column("op_order_id", op_order)
        .column("op_product_id", op_product)
        .column("op_reordered", op_reordered)
        .column("op_cart_position", op_cart_pos)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("orderproducts", orderproducts, scale.partitions).unwrap());

    Arc::new(catalog)
}

const ERR: &str = "ERROR WITHIN 10% AT CONFIDENCE 95%";

/// The eight Table I templates. The first four are the sketch-friendly
/// COUNT-over-join shapes; the last four are the sample-friendly shapes
/// grouping on the fact table side.
pub fn workload() -> Workload {
    let mut templates: Vec<QueryTemplate> = Vec::new();

    // sketch-1: order_id, count(*) FROM orderproducts JOIN orders WHERE
    // o_order_dow = _day_ AND o_order_hod > _hour_.
    templates.push(QueryTemplate::new("sketch-1", |rng: &mut SmallRng| {
        format!(
            "SELECT o_order_dow, COUNT(*) FROM orderproducts \
             JOIN orders ON op_order_id = o_order_id \
             WHERE o_order_dow = {} AND o_order_hod > {} GROUP BY o_order_dow {ERR}",
            rng.random_range(0..7),
            rng.random_range(8..20)
        )
    }));
    // sketch-2: product_id, count(*) FROM orderproducts JOIN products WHERE
    // p_product_name = _productname_.
    templates.push(QueryTemplate::new("sketch-2", |rng: &mut SmallRng| {
        format!(
            "SELECT p_product_name, COUNT(*) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_product_name = 'product_{}' GROUP BY p_product_name {ERR}",
            rng.random_range(0..500)
        )
    }));
    // sketch-3 / sketch-4: the department / aisle variants. The engine's SQL
    // subset joins the dimension attribute directly from `products`, which
    // the generator denormalizes for exactly this purpose.
    templates.push(QueryTemplate::new("sketch-3", |rng: &mut SmallRng| {
        format!(
            "SELECT p_dept_id, COUNT(*) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_dept_id = {} GROUP BY p_dept_id {ERR}",
            rng.random_range(0..NUM_DEPARTMENTS as i64)
        )
    }));
    templates.push(QueryTemplate::new("sketch-4", |rng: &mut SmallRng| {
        format!(
            "SELECT p_aisle_id, COUNT(*) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_aisle_id = {} GROUP BY p_aisle_id {ERR}",
            rng.random_range(0..NUM_AISLES as i64)
        )
    }));
    // sample-1..4: grouping on the fact side.
    templates.push(QueryTemplate::new("sample-1", |rng: &mut SmallRng| {
        format!(
            "SELECT op_product_id, COUNT(*) FROM orderproducts \
             JOIN orders ON op_order_id = o_order_id \
             WHERE o_order_dow = {} AND o_order_hod > {} GROUP BY op_product_id {ERR}",
            rng.random_range(0..7),
            rng.random_range(8..20)
        )
    }));
    templates.push(QueryTemplate::new("sample-2", |rng: &mut SmallRng| {
        format!(
            "SELECT op_order_id, COUNT(*) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_product_name = 'product_{}' GROUP BY op_order_id {ERR}",
            rng.random_range(0..500)
        )
    }));
    templates.push(QueryTemplate::new("sample-3", |rng: &mut SmallRng| {
        format!(
            "SELECT op_reordered, COUNT(*) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_dept_id = {} GROUP BY op_reordered {ERR}",
            rng.random_range(0..NUM_DEPARTMENTS as i64)
        )
    }));
    templates.push(QueryTemplate::new("sample-4", |rng: &mut SmallRng| {
        format!(
            "SELECT op_reordered, AVG(op_cart_position) FROM orderproducts \
             JOIN products ON op_product_id = p_product_id \
             WHERE p_aisle_id = {} GROUP BY op_reordered {ERR}",
            rng.random_range(0..NUM_AISLES as i64)
        )
    }));

    Workload {
        name: "instacart".into(),
        templates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::random_sequence;

    #[test]
    fn schema_is_registered() {
        let cat = generate(InstacartScale {
            orderproducts_rows: 2_000,
            partitions: 2,
            seed: 3,
        });
        for t in ["orderproducts", "orders", "products", "departments", "aisles"] {
            assert!(cat.contains(t), "missing table {t}");
        }
    }

    #[test]
    fn eight_templates_parse_and_plan() {
        let cat = generate(InstacartScale {
            orderproducts_rows: 2_000,
            partitions: 2,
            seed: 3,
        });
        let w = workload();
        assert_eq!(w.templates.len(), 8);
        for q in random_sequence(&w, 16, 9) {
            let parsed = taster_engine::parse_query(&q.sql)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", q.template_id, q.sql));
            parsed.to_exact_plan(&cat).unwrap();
        }
    }

    #[test]
    fn popular_products_are_skewed() {
        let cat = generate(InstacartScale::default());
        let stats = cat.table("orderproducts").unwrap().stats();
        assert!(stats.is_skewed("op_product_id"));
    }
}
