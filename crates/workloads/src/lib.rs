//! Benchmark datasets and query workloads.
//!
//! The paper evaluates Taster on TPC-H (scale factor 300, 18 of the 22
//! templates), TPC-DS (scale factor 200, 20 queries) and a synthetic online
//! grocery store ("instacart", Table I). Those datasets are hundreds of
//! gigabytes; this crate provides deterministic, laptop-scale generators with
//! the same *structure* (star-schema joins, skewed and uniform attributes,
//! per-table column-name prefixes) plus query-template generators that
//! randomize predicates the same way the paper's methodology does ("randomly
//! choose one of the available templates with equal probability and generate
//! a new query by randomly choosing the predicate value").

pub mod driver;
pub mod instacart;
pub mod tpcds;
pub mod tpch;

pub use driver::{epoch_sequence, random_sequence, QueryInstance, QueryTemplate, Workload};
