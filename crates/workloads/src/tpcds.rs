//! TPC-DS-like dataset and query templates.
//!
//! The paper uses 20 TPC-DS queries over a retail star schema. The generator
//! below builds the core of that schema — `store_sales` joined with
//! `date_dim`, `item`, `store` and `customer_demographics` — and 20 aggregate
//! templates that exercise the joins the paper highlights (in particular the
//! frequent `store_sales ⋈ date_dim` subplan that Taster summarizes as an
//! intermediate result).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, Table};

use crate::driver::{QueryTemplate, Workload};

/// Scale configuration for the TPC-DS-like generator.
#[derive(Debug, Clone, Copy)]
pub struct TpcdsScale {
    /// Number of `store_sales` rows.
    pub store_sales_rows: usize,
    /// Partitions of the fact table.
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpcdsScale {
    fn default() -> Self {
        Self {
            store_sales_rows: 50_000,
            partitions: 8,
            seed: 7,
        }
    }
}

/// Generate the TPC-DS-like dataset into a fresh catalog.
pub fn generate(scale: TpcdsScale) -> Arc<Catalog> {
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let catalog = Catalog::new();

    let n_sales = scale.store_sales_rows.max(1_000);
    let n_dates = 730usize;
    let n_items = (n_sales / 50).max(100);
    let n_stores = 20usize;
    let n_demo = 200usize;

    let mut ss_date = Vec::with_capacity(n_sales);
    let mut ss_item = Vec::with_capacity(n_sales);
    let mut ss_store = Vec::with_capacity(n_sales);
    let mut ss_demo = Vec::with_capacity(n_sales);
    let mut ss_quantity = Vec::with_capacity(n_sales);
    let mut ss_sales_price = Vec::with_capacity(n_sales);
    let mut ss_net_profit = Vec::with_capacity(n_sales);
    for _ in 0..n_sales {
        // Dates are skewed towards the end of the range (holiday season).
        let d = if rng.random_range(0..4) == 0 {
            rng.random_range((n_dates * 3 / 4)..n_dates)
        } else {
            rng.random_range(0..n_dates)
        };
        ss_date.push(d as i64);
        ss_item.push(rng.random_range(0..n_items as i64));
        ss_store.push(rng.random_range(0..n_stores as i64));
        ss_demo.push(rng.random_range(0..n_demo as i64));
        ss_quantity.push(rng.random_range(1..100) as f64);
        ss_sales_price.push(rng.random_range(100..20_000) as f64 / 100.0);
        ss_net_profit.push(rng.random_range(-5_000..15_000) as f64 / 100.0);
    }
    let store_sales = BatchBuilder::new()
        .column("ss_sold_date_sk", ss_date)
        .column("ss_item_sk", ss_item)
        .column("ss_store_sk", ss_store)
        .column("ss_cdemo_sk", ss_demo)
        .column("ss_quantity", ss_quantity)
        .column("ss_sales_price", ss_sales_price)
        .column("ss_net_profit", ss_net_profit)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("store_sales", store_sales, scale.partitions).unwrap());

    let mut d_year = Vec::with_capacity(n_dates);
    let mut d_moy = Vec::with_capacity(n_dates);
    let mut d_dow = Vec::with_capacity(n_dates);
    for d in 0..n_dates {
        d_year.push(1998 + (d / 365) as i64);
        d_moy.push(((d / 30) % 12 + 1) as i64);
        d_dow.push((d % 7) as i64);
    }
    let date_dim = BatchBuilder::new()
        .column("d_date_sk", (0..n_dates as i64).collect::<Vec<_>>())
        .column("d_year", d_year)
        .column("d_moy", d_moy)
        .column("d_dow", d_dow)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("date_dim", date_dim, 1).unwrap());

    let mut i_category = Vec::with_capacity(n_items);
    let mut i_brand = Vec::with_capacity(n_items);
    let mut i_price = Vec::with_capacity(n_items);
    for _ in 0..n_items {
        i_category.push(
            ["Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women", "Children"]
                [rng.random_range(0..10)]
            .to_string(),
        );
        i_brand.push(format!("brand{}", rng.random_range(0..50)));
        i_price.push(rng.random_range(100..10_000) as f64 / 100.0);
    }
    let item = BatchBuilder::new()
        .column("i_item_sk", (0..n_items as i64).collect::<Vec<_>>())
        .column("i_category", i_category)
        .column("i_brand", i_brand)
        .column("i_current_price", i_price)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("item", item, 1).unwrap());

    let mut s_state = Vec::with_capacity(n_stores);
    for _ in 0..n_stores {
        s_state.push(["TN", "CA", "TX", "NY", "WA"][rng.random_range(0..5)].to_string());
    }
    let store = BatchBuilder::new()
        .column("s_store_sk", (0..n_stores as i64).collect::<Vec<_>>())
        .column("s_state", s_state)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("store", store, 1).unwrap());

    let mut cd_gender = Vec::with_capacity(n_demo);
    let mut cd_education = Vec::with_capacity(n_demo);
    for _ in 0..n_demo {
        cd_gender.push(if rng.random_range(0..2) == 0 { "M" } else { "F" }.to_string());
        cd_education.push(
            ["Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced"]
                [rng.random_range(0..6)]
            .to_string(),
        );
    }
    let demo = BatchBuilder::new()
        .column("cd_demo_sk", (0..n_demo as i64).collect::<Vec<_>>())
        .column("cd_gender", cd_gender)
        .column("cd_education_status", cd_education)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("customer_demographics", demo, 1).unwrap());

    Arc::new(catalog)
}

const ERR: &str = "ERROR WITHIN 10% AT CONFIDENCE 95%";

/// The 20 TPC-DS-like query templates.
pub fn workload() -> Workload {
    let mut templates: Vec<QueryTemplate> = Vec::new();

    // Ten templates over store_sales ⋈ date_dim, varying grouping and
    // aggregate — the join the paper calls out as the frequently reused
    // intermediate result.
    let date_groupings = ["d_year", "d_moy", "d_dow"];
    let aggs = ["SUM(ss_sales_price)", "AVG(ss_net_profit)", "SUM(ss_quantity)"];
    let mut idx = 0;
    for g in date_groupings {
        for a in aggs {
            idx += 1;
            let id = format!("ds-date-{idx}");
            let group = g.to_string();
            let agg = a.to_string();
            templates.push(QueryTemplate::new(id, move |rng: &mut SmallRng| {
                format!(
                    "SELECT {group}, {agg}, COUNT(*) FROM store_sales \
                     JOIN date_dim ON ss_sold_date_sk = d_date_sk \
                     WHERE ss_quantity > {} GROUP BY {group} {ERR}",
                    rng.random_range(1..50)
                )
            }));
        }
    }
    // One more date template with a dimension-side predicate.
    templates.push(QueryTemplate::new("ds-date-10", |rng: &mut SmallRng| {
        format!(
            "SELECT d_moy, SUM(ss_sales_price) FROM store_sales \
             JOIN date_dim ON ss_sold_date_sk = d_date_sk \
             WHERE d_year = {} GROUP BY d_moy {ERR}",
            1998 + rng.random_range(0..2)
        )
    }));

    // Five item-dimension templates.
    for (i, agg) in ["SUM(ss_sales_price)", "AVG(ss_sales_price)", "SUM(ss_net_profit)", "COUNT(*)", "SUM(ss_quantity)"]
        .iter()
        .enumerate()
    {
        let id = format!("ds-item-{}", i + 1);
        let agg = agg.to_string();
        templates.push(QueryTemplate::new(id, move |rng: &mut SmallRng| {
            format!(
                "SELECT i_category, {agg} FROM store_sales \
                 JOIN item ON ss_item_sk = i_item_sk \
                 WHERE ss_sales_price > {} GROUP BY i_category {ERR}",
                rng.random_range(1..100)
            )
        }));
    }

    // Two store templates.
    templates.push(QueryTemplate::new("ds-store-1", |rng: &mut SmallRng| {
        format!(
            "SELECT s_state, SUM(ss_net_profit) FROM store_sales \
             JOIN store ON ss_store_sk = s_store_sk \
             WHERE ss_quantity > {} GROUP BY s_state {ERR}",
            rng.random_range(1..60)
        )
    }));
    templates.push(QueryTemplate::new("ds-store-2", |rng: &mut SmallRng| {
        format!(
            "SELECT s_state, AVG(ss_sales_price), COUNT(*) FROM store_sales \
             JOIN store ON ss_store_sk = s_store_sk \
             WHERE ss_net_profit > {} GROUP BY s_state {ERR}",
            rng.random_range(0..50)
        )
    }));

    // Two demographics templates.
    templates.push(QueryTemplate::new("ds-demo-1", |rng: &mut SmallRng| {
        format!(
            "SELECT cd_gender, SUM(ss_sales_price) FROM store_sales \
             JOIN customer_demographics ON ss_cdemo_sk = cd_demo_sk \
             WHERE ss_quantity > {} GROUP BY cd_gender {ERR}",
            rng.random_range(1..50)
        )
    }));
    templates.push(QueryTemplate::new("ds-demo-2", |rng: &mut SmallRng| {
        format!(
            "SELECT cd_education_status, AVG(ss_net_profit) FROM store_sales \
             JOIN customer_demographics ON ss_cdemo_sk = cd_demo_sk \
             WHERE ss_sales_price > {} GROUP BY cd_education_status {ERR}",
            rng.random_range(1..100)
        )
    }));

    // One flat template over the fact table alone.
    templates.push(QueryTemplate::new("ds-flat-1", |rng: &mut SmallRng| {
        format!(
            "SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales \
             WHERE ss_quantity >= {} GROUP BY ss_store_sk {ERR}",
            rng.random_range(1..40)
        )
    }));

    Workload {
        name: "tpcds".into(),
        templates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::random_sequence;

    #[test]
    fn schema_and_foreign_keys() {
        let cat = generate(TpcdsScale {
            store_sales_rows: 3_000,
            partitions: 3,
            seed: 1,
        });
        assert!(cat.contains("store_sales"));
        assert!(cat.contains("date_dim"));
        assert_eq!(cat.table("store_sales").unwrap().num_rows(), 3_000);
    }

    #[test]
    fn exactly_20_templates_that_parse_and_plan() {
        let cat = generate(TpcdsScale {
            store_sales_rows: 2_000,
            partitions: 2,
            seed: 2,
        });
        let w = workload();
        assert_eq!(w.templates.len(), 20);
        for q in random_sequence(&w, 40, 5) {
            let parsed = taster_engine::parse_query(&q.sql)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", q.template_id, q.sql));
            parsed.to_exact_plan(&cat).unwrap();
        }
    }
}
