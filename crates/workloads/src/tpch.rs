//! TPC-H-like dataset and query templates.
//!
//! The schema mirrors the TPC-H star around `lineitem`: `orders`, `customer`,
//! `part` and `supplier` dimensions with the standard column-name prefixes.
//! Row counts follow the TPC-H ratios (lineitem ≈ 4× orders, orders = 10×
//! customers, ...) at a laptop scale factor. The 18 templates correspond to
//! the 18 approximable TPC-H queries the paper uses (all 22 except Q2, Q4,
//! Q21, Q22), simplified to the engine's SQL subset while keeping each
//! query's join shape, grouping attributes and selective predicates.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

use taster_storage::batch::BatchBuilder;
use taster_storage::{Catalog, Table};

use crate::driver::{QueryTemplate, Workload};

/// Scale configuration for the TPC-H-like generator.
#[derive(Debug, Clone, Copy)]
pub struct TpchScale {
    /// Number of `lineitem` rows; other tables follow TPC-H ratios.
    pub lineitem_rows: usize,
    /// Number of partitions per fact table (distribution factor).
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchScale {
    fn default() -> Self {
        Self {
            lineitem_rows: 60_000,
            partitions: 8,
            seed: 42,
        }
    }
}

/// Dimension-table cardinalities implied by a scale (TPC-H ratios).
fn cardinalities(scale: &TpchScale) -> (usize, usize, usize, usize, usize) {
    let n_line = scale.lineitem_rows.max(1_000);
    let n_orders = (n_line / 4).max(100);
    let n_cust = (n_orders / 10).max(50);
    let n_part = (n_line / 30).max(50);
    let n_supp = (n_line / 600).max(20);
    (n_line, n_orders, n_cust, n_part, n_supp)
}

/// Generate `n` lineitem rows drawing keys/values from `rng` (shared by the
/// initial load and the growth-phase batches so appended rows follow the same
/// distributions as the seed data).
fn lineitem_rows(
    rng: &mut SmallRng,
    n: usize,
    n_orders: usize,
    n_part: usize,
    n_supp: usize,
) -> taster_storage::RecordBatch {
    let mut l_orderkey = Vec::with_capacity(n);
    let mut l_partkey = Vec::with_capacity(n);
    let mut l_suppkey = Vec::with_capacity(n);
    let mut l_quantity = Vec::with_capacity(n);
    let mut l_price = Vec::with_capacity(n);
    let mut l_discount = Vec::with_capacity(n);
    let mut l_tax = Vec::with_capacity(n);
    let mut l_returnflag = Vec::with_capacity(n);
    let mut l_linestatus = Vec::with_capacity(n);
    let mut l_shipdate = Vec::with_capacity(n);
    let mut l_shipmode = Vec::with_capacity(n);
    for _ in 0..n {
        l_orderkey.push(rng.random_range(0..n_orders as i64));
        l_partkey.push(rng.random_range(0..n_part as i64));
        l_suppkey.push(rng.random_range(0..n_supp as i64));
        l_quantity.push(rng.random_range(1..51) as f64);
        l_price.push(rng.random_range(90_000..105_000) as f64 / 100.0);
        l_discount.push(rng.random_range(0..11) as f64 / 100.0);
        l_tax.push(rng.random_range(0..9) as f64 / 100.0);
        // Skewed: most lineitems are neither returned nor open.
        let flag = match rng.random_range(0..10) {
            0 => "R",
            1 => "A",
            _ => "N",
        };
        l_returnflag.push(flag.to_string());
        l_linestatus.push(if rng.random_range(0..2) == 0 { "O" } else { "F" }.to_string());
        l_shipdate.push(rng.random_range(19_920_101..19_981_231) as i64);
        let mode = ["MAIL", "SHIP", "AIR", "TRUCK", "RAIL", "FOB", "REG AIR"]
            [rng.random_range(0..7)];
        l_shipmode.push(mode.to_string());
    }
    BatchBuilder::new()
        .column("l_orderkey", l_orderkey)
        .column("l_partkey", l_partkey)
        .column("l_suppkey", l_suppkey)
        .column("l_quantity", l_quantity)
        .column("l_extendedprice", l_price)
        .column("l_discount", l_discount)
        .column("l_tax", l_tax)
        .column("l_returnflag", l_returnflag)
        .column("l_linestatus", l_linestatus)
        .column("l_shipdate", l_shipdate)
        .column("l_shipmode", l_shipmode)
        .build()
        .expect("lineitem generator produces consistent columns")
}

/// A batch of `rows` additional `lineitem` rows following the same value
/// distributions (and dimension-key ranges) as [`generate`] produced for
/// `scale` — the data-growth phases of the ingestion experiments append
/// these to the registered `lineitem` table via
/// [`taster_storage::Table::append`]. Deterministic per `(scale.seed, seed)`.
pub fn lineitem_growth_batch(
    scale: &TpchScale,
    rows: usize,
    seed: u64,
) -> taster_storage::RecordBatch {
    let (_, n_orders, _, n_part, n_supp) = cardinalities(scale);
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    lineitem_rows(&mut rng, rows, n_orders, n_part, n_supp)
}

/// Generate the TPC-H-like dataset and register it in a fresh catalog.
pub fn generate(scale: TpchScale) -> Arc<Catalog> {
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    let catalog = Catalog::new();

    let (n_line, n_orders, n_cust, n_part, n_supp) = cardinalities(&scale);

    // lineitem: the fact table.
    let lineitem = lineitem_rows(&mut rng, n_line, n_orders, n_part, n_supp);
    catalog.register(Table::from_batch("lineitem", lineitem, scale.partitions).unwrap());

    // orders.
    let mut o_custkey = Vec::with_capacity(n_orders);
    let mut o_status = Vec::with_capacity(n_orders);
    let mut o_total = Vec::with_capacity(n_orders);
    let mut o_date = Vec::with_capacity(n_orders);
    let mut o_priority = Vec::with_capacity(n_orders);
    for _ in 0..n_orders {
        o_custkey.push(rng.random_range(0..n_cust as i64));
        o_status.push(["O", "F", "P"][rng.random_range(0..3)].to_string());
        o_total.push(rng.random_range(1_000..500_000) as f64 / 100.0);
        o_date.push(rng.random_range(19_920_101..19_981_231) as i64);
        o_priority.push(
            ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
                [rng.random_range(0..5)]
            .to_string(),
        );
    }
    let orders = BatchBuilder::new()
        .column("o_orderkey", (0..n_orders as i64).collect::<Vec<_>>())
        .column("o_custkey", o_custkey)
        .column("o_orderstatus", o_status)
        .column("o_totalprice", o_total)
        .column("o_orderdate", o_date)
        .column("o_orderpriority", o_priority)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("orders", orders, scale.partitions).unwrap());

    // customer.
    let mut c_nation = Vec::with_capacity(n_cust);
    let mut c_segment = Vec::with_capacity(n_cust);
    let mut c_acctbal = Vec::with_capacity(n_cust);
    for _ in 0..n_cust {
        c_nation.push(rng.random_range(0..25i64));
        c_segment.push(
            ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
                [rng.random_range(0..5)]
            .to_string(),
        );
        c_acctbal.push(rng.random_range(-99_999..999_999) as f64 / 100.0);
    }
    let customer = BatchBuilder::new()
        .column("c_custkey", (0..n_cust as i64).collect::<Vec<_>>())
        .column("c_nationkey", c_nation)
        .column("c_mktsegment", c_segment)
        .column("c_acctbal", c_acctbal)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("customer", customer, 1).unwrap());

    // part.
    let mut p_brand = Vec::with_capacity(n_part);
    let mut p_type = Vec::with_capacity(n_part);
    let mut p_size = Vec::with_capacity(n_part);
    for _ in 0..n_part {
        p_brand.push(format!("Brand#{}{}", rng.random_range(1..6), rng.random_range(1..6)));
        p_type.push(
            ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
                [rng.random_range(0..6)]
            .to_string(),
        );
        p_size.push(rng.random_range(1..51i64));
    }
    let part = BatchBuilder::new()
        .column("p_partkey", (0..n_part as i64).collect::<Vec<_>>())
        .column("p_brand", p_brand)
        .column("p_type", p_type)
        .column("p_size", p_size)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("part", part, 1).unwrap());

    // supplier.
    let mut s_nation = Vec::with_capacity(n_supp);
    for _ in 0..n_supp {
        s_nation.push(rng.random_range(0..25i64));
    }
    let supplier = BatchBuilder::new()
        .column("s_suppkey", (0..n_supp as i64).collect::<Vec<_>>())
        .column("s_nationkey", s_nation)
        .build()
        .unwrap();
    catalog.register(Table::from_batch("supplier", supplier, 1).unwrap());

    Arc::new(catalog)
}

const ERR: &str = "ERROR WITHIN 10% AT CONFIDENCE 95%";

fn date(rng: &mut SmallRng) -> i64 {
    rng.random_range(19_930_101..19_980_101) as i64
}

/// The 18 TPC-H-like query templates (Q2/Q4/Q21/Q22 are excluded, matching
/// the paper's footnote 3).
pub fn workload() -> Workload {
    let mut templates: Vec<QueryTemplate> = Vec::new();

    templates.push(QueryTemplate::new("q1", |rng: &mut SmallRng| {
        format!(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), COUNT(*) \
             FROM lineitem WHERE l_shipdate <= {} GROUP BY l_returnflag, l_linestatus {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q3", |rng: &mut SmallRng| {
        format!(
            "SELECT o_orderpriority, SUM(l_extendedprice) FROM lineitem \
             JOIN orders ON l_orderkey = o_orderkey \
             WHERE o_orderdate < {} GROUP BY o_orderpriority {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q5", |rng: &mut SmallRng| {
        format!(
            "SELECT c_nationkey, SUM(l_extendedprice) FROM lineitem \
             JOIN orders ON l_orderkey = o_orderkey \
             JOIN customer ON o_custkey = c_custkey \
             WHERE o_orderdate >= {} GROUP BY c_nationkey {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q6", |rng: &mut SmallRng| {
        format!(
            "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem \
             WHERE l_shipdate >= {} AND l_discount <= {} AND l_quantity < {} {ERR}",
            date(rng),
            rng.random_range(2..8) as f64 / 100.0,
            rng.random_range(20..30)
        )
    }));
    templates.push(QueryTemplate::new("q7", |rng: &mut SmallRng| {
        format!(
            "SELECT s_nationkey, SUM(l_extendedprice) FROM lineitem \
             JOIN supplier ON l_suppkey = s_suppkey \
             WHERE l_shipdate >= {} GROUP BY s_nationkey {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q8", |rng: &mut SmallRng| {
        format!(
            "SELECT p_type, AVG(l_extendedprice) FROM lineitem \
             JOIN part ON l_partkey = p_partkey \
             WHERE l_shipdate >= {} GROUP BY p_type {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q9", |rng: &mut SmallRng| {
        format!(
            "SELECT s_nationkey, SUM(l_extendedprice), SUM(l_quantity) FROM lineitem \
             JOIN supplier ON l_suppkey = s_suppkey \
             JOIN part ON l_partkey = p_partkey \
             WHERE p_size >= {} GROUP BY s_nationkey {ERR}",
            rng.random_range(1..30)
        )
    }));
    templates.push(QueryTemplate::new("q10", |rng: &mut SmallRng| {
        format!(
            "SELECT c_nationkey, SUM(l_extendedprice) FROM lineitem \
             JOIN orders ON l_orderkey = o_orderkey \
             JOIN customer ON o_custkey = c_custkey \
             WHERE l_returnflag = 'R' AND o_orderdate >= {} GROUP BY c_nationkey {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q11", |rng: &mut SmallRng| {
        format!(
            "SELECT s_nationkey, SUM(l_quantity) FROM lineitem \
             JOIN supplier ON l_suppkey = s_suppkey \
             WHERE l_quantity > {} GROUP BY s_nationkey {ERR}",
            rng.random_range(5..25)
        )
    }));
    templates.push(QueryTemplate::new("q12", |rng: &mut SmallRng| {
        format!(
            "SELECT l_shipmode, COUNT(*) FROM lineitem \
             JOIN orders ON l_orderkey = o_orderkey \
             WHERE l_shipdate >= {} GROUP BY l_shipmode {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q13", |rng: &mut SmallRng| {
        format!(
            "SELECT o_orderpriority, COUNT(*) FROM orders \
             WHERE o_totalprice > {} GROUP BY o_orderpriority {ERR}",
            rng.random_range(100..2_000)
        )
    }));
    templates.push(QueryTemplate::new("q14", |rng: &mut SmallRng| {
        format!(
            "SELECT p_type, SUM(l_extendedprice) FROM lineitem \
             JOIN part ON l_partkey = p_partkey \
             WHERE l_shipdate >= {} GROUP BY p_type {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q15", |rng: &mut SmallRng| {
        format!(
            "SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem \
             WHERE l_shipdate >= {} GROUP BY l_suppkey {ERR}",
            date(rng)
        )
    }));
    templates.push(QueryTemplate::new("q16", |rng: &mut SmallRng| {
        format!(
            "SELECT p_brand, COUNT(*) FROM lineitem \
             JOIN part ON l_partkey = p_partkey \
             WHERE p_size <= {} GROUP BY p_brand {ERR}",
            rng.random_range(10..50)
        )
    }));
    templates.push(QueryTemplate::new("q17", |rng: &mut SmallRng| {
        format!(
            "SELECT p_brand, AVG(l_quantity) FROM lineitem \
             JOIN part ON l_partkey = p_partkey \
             WHERE l_quantity < {} GROUP BY p_brand {ERR}",
            rng.random_range(10..40)
        )
    }));
    templates.push(QueryTemplate::new("q18", |rng: &mut SmallRng| {
        format!(
            "SELECT o_orderstatus, SUM(l_quantity) FROM lineitem \
             JOIN orders ON l_orderkey = o_orderkey \
             WHERE l_quantity >= {} GROUP BY o_orderstatus {ERR}",
            rng.random_range(10..45)
        )
    }));
    templates.push(QueryTemplate::new("q19", |rng: &mut SmallRng| {
        format!(
            "SELECT l_shipmode, SUM(l_extendedprice) FROM lineitem \
             JOIN part ON l_partkey = p_partkey \
             WHERE p_size <= {} AND l_quantity >= {} GROUP BY l_shipmode {ERR}",
            rng.random_range(20..50),
            rng.random_range(1..20)
        )
    }));
    templates.push(QueryTemplate::new("q20", |rng: &mut SmallRng| {
        format!(
            "SELECT s_nationkey, COUNT(*) FROM lineitem \
             JOIN supplier ON l_suppkey = s_suppkey \
             WHERE l_shipdate >= {} AND l_quantity > {} GROUP BY s_nationkey {ERR}",
            date(rng),
            rng.random_range(5..30)
        )
    }));

    Workload {
        name: "tpch".into(),
        templates,
    }
}

/// The four epochs of the workload-shift experiment (Fig. 6): the template
/// groups the paper lists in Section VI-B.
pub fn fig6_epochs() -> Vec<Vec<&'static str>> {
    vec![
        vec!["q6", "q14", "q17"],
        vec!["q5", "q8", "q11", "q12"],
        vec!["q1", "q3", "q16", "q19"],
        vec!["q7", "q9", "q13", "q18"],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::random_sequence;

    #[test]
    fn growth_batches_append_cleanly_onto_the_generated_table() {
        let scale = TpchScale {
            lineitem_rows: 5_000,
            partitions: 4,
            seed: 1,
        };
        let cat = generate(scale);
        let li = cat.table("lineitem").unwrap();
        let delta = lineitem_growth_batch(&scale, 1_250, 7);
        assert_eq!(delta.schema().as_ref(), li.schema().as_ref());
        // Deterministic per seed, different across seeds.
        assert_eq!(delta, lineitem_growth_batch(&scale, 1_250, 7));
        assert_ne!(delta, lineitem_growth_batch(&scale, 1_250, 8));
        let report = li.append(&delta).unwrap();
        assert_eq!(report.rows, 1_250);
        assert_eq!(li.num_rows(), 6_250);
        // Appended foreign keys stay within the dimension cardinalities.
        let orders = cat.table("orders").unwrap();
        let max_key = delta
            .column_by_name("l_orderkey")
            .unwrap()
            .iter_values()
            .map(|v| v.as_i64().unwrap())
            .max()
            .unwrap();
        assert!((max_key as usize) < orders.num_rows());
    }

    #[test]
    fn generator_produces_consistent_star_schema() {
        let cat = generate(TpchScale {
            lineitem_rows: 5_000,
            partitions: 4,
            seed: 1,
        });
        assert_eq!(
            cat.table_names(),
            vec!["customer", "lineitem", "orders", "part", "supplier"]
        );
        let li = cat.table("lineitem").unwrap();
        assert_eq!(li.num_rows(), 5_000);
        assert_eq!(li.num_partitions(), 4);
        // Foreign keys reference existing orders.
        let orders = cat.table("orders").unwrap();
        let max_key = li
            .stats()
            .column("l_orderkey")
            .unwrap()
            .max
            .clone()
            .unwrap()
            .as_i64()
            .unwrap();
        assert!((max_key as usize) < orders.num_rows());
    }

    #[test]
    fn all_18_templates_parse_and_plan() {
        let cat = generate(TpchScale {
            lineitem_rows: 2_000,
            partitions: 2,
            seed: 2,
        });
        let w = workload();
        assert_eq!(w.templates.len(), 18);
        let seq = random_sequence(&w, 36, 3);
        for q in &seq {
            let parsed = taster_engine::parse_query(&q.sql)
                .unwrap_or_else(|e| panic!("template {} failed to parse: {e}\n{}", q.template_id, q.sql));
            parsed
                .to_exact_plan(&cat)
                .unwrap_or_else(|e| panic!("template {} failed to plan: {e}", q.template_id));
        }
    }

    #[test]
    fn fig6_epochs_reference_known_templates() {
        let w = workload();
        for epoch in fig6_epochs() {
            for id in epoch {
                assert!(w.template(id).is_some(), "unknown template {id}");
            }
        }
    }
}
