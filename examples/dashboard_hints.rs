//! A dashboard workload with user hints — the Section V / Fig. 7 scenario.
//!
//! The operator knows the dashboard will keep aggregating the `orderproducts`
//! fact table of the instacart-like dataset, so they pin an offline
//! variational sample (VerdictDB-style) before the first query. Taster never
//! evicts it and keeps tuning the remaining budget online for the ad-hoc
//! queries that arrive alongside the dashboard refreshes.
//!
//! Run with: `cargo run --release --example dashboard_hints`

use taster_repro::taster::hints::OfflineStrategy;
use taster_repro::taster::{TasterConfig, TasterEngine};
use taster_repro::workloads::{instacart, random_sequence};

fn main() {
    let catalog = instacart::generate(instacart::InstacartScale {
        orderproducts_rows: 40_000,
        partitions: 8,
        seed: 5,
    });
    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let taster = TasterEngine::new(catalog, config);

    // Offline phase driven by the hint.
    let report = taster
        .add_offline_hint(
            "orderproducts",
            OfflineStrategy::Variational { fraction: 0.05 },
            None,
        )
        .expect("hint builds");
    println!(
        "offline hint: scanned {} rows, scrambled {} rows, stored {:.2} MB, simulated {:.2}s",
        report.rows_scanned,
        report.rows_scrambled,
        report.bytes as f64 / (1 << 20) as f64,
        report.simulated_secs
    );

    // Online phase: a mix of dashboard refreshes and ad-hoc queries.
    let queries = random_sequence(&instacart::workload(), 24, 3);
    let mut total = 0.0;
    let mut reused = 0;
    for q in &queries {
        let res = taster.execute_sql(&q.sql).expect("query runs");
        total += res.simulated_secs;
        if !res.reused_synopses.is_empty() {
            reused += 1;
        }
    }
    println!(
        "online phase: {} queries in {:.2}s simulated; {} reused a materialized synopsis",
        queries.len(),
        total,
        reused
    );

    // The pinned synopsis survives even a drastic budget cut.
    taster.set_storage_budget(report.bytes);
    println!(
        "after shrinking the budget to the hint size, warehouse still holds {} synopsis(es)",
        taster.store().usage().warehouse_count
    );
}
