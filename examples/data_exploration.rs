//! Data exploration under a shifting workload — the scenario the paper's
//! introduction motivates: an analyst whose interests drift, so no offline
//! sample set can be prepared in advance.
//!
//! The example runs three "analysis sessions" over the TPC-H-like dataset,
//! each focused on different templates, and shows Taster's warehouse being
//! re-tuned as the interest shifts (the Fig. 6 behaviour, at example scale).
//! Between sessions the `lineitem` table keeps growing (online ingestion), so
//! every row count printed below is read from the live `Table` statistics —
//! never from a constant captured at load time.
//!
//! Run with: `cargo run --release --example data_exploration`

use taster_repro::taster::{TasterConfig, TasterEngine};
use taster_repro::workloads::{epoch_sequence, tpch};

fn main() {
    let scale = tpch::TpchScale {
        lineitem_rows: 30_000,
        partitions: 8,
        seed: 1,
    };
    let catalog = tpch::generate(scale);
    let workload = tpch::workload();

    // Three exploration phases: pricing, shipping, then supplier analysis.
    let phases = vec![
        vec!["q1", "q6"],
        vec!["q12", "q19"],
        vec!["q7", "q11", "q20"],
    ];
    let queries = epoch_sequence(&workload, &phases, 8, 99);

    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let taster = TasterEngine::new(catalog.clone(), config);
    let lineitem = catalog.table("lineitem").expect("registered");

    let mut phase_time = vec![0.0f64; phases.len()];
    for (i, q) in queries.iter().enumerate() {
        let phase = i / 8;
        // New data arrives while the analyst works: between sessions the fact
        // table grows by 15%. Row counts below come from `Table::stats()`,
        // which catches up incrementally after each append.
        if i > 0 && i % 8 == 0 {
            let current = lineitem.stats().row_count;
            let delta = tpch::lineitem_growth_batch(&scale, current * 15 / 100, i as u64);
            lineitem.append(&delta).expect("append");
            println!(
                "-- ingest before phase {}: lineitem grew to {} rows (snapshot v{})",
                phase + 1,
                lineitem.stats().row_count,
                lineitem.version()
            );
        }
        let res = taster.execute_sql(&q.sql).expect("query runs");
        phase_time[phase] += res.simulated_secs;
        let usage = taster.store().usage();
        println!(
            "q{:02} [{}] {:<28} {:>8.3}s  reuse={:<5} warehouse={:>6.2} MB  rows={}",
            i + 1,
            phase + 1,
            q.template_id,
            res.simulated_secs,
            !res.reused_synopses.is_empty(),
            usage.warehouse_bytes as f64 / (1 << 20) as f64,
            lineitem.stats().row_count
        );
    }

    println!("\nsimulated time per exploration phase:");
    for (i, t) in phase_time.iter().enumerate() {
        println!("  phase {}: {:.2}s", i + 1, t);
    }
    println!(
        "synopses known to the metadata store: {} (materialized: {}, refreshed {} times)",
        taster.metadata().num_synopses(),
        taster.store().materialized_ids().len(),
        taster.synopsis_refreshes()
    );
    println!(
        "lineitem ended at {} rows across {} partitions (from Table stats, not the load-time constant)",
        lineitem.stats().row_count,
        lineitem.num_partitions()
    );
    println!("tuner window trajectory: {:?}", taster.window_history());
}
