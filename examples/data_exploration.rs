//! Data exploration under a shifting workload — the scenario the paper's
//! introduction motivates: an analyst whose interests drift, so no offline
//! sample set can be prepared in advance.
//!
//! The example runs three "analysis sessions" over the TPC-H-like dataset,
//! each focused on different templates, and shows Taster's warehouse being
//! re-tuned as the interest shifts (the Fig. 6 behaviour, at example scale).
//!
//! Run with: `cargo run --release --example data_exploration`

use taster_repro::taster::{TasterConfig, TasterEngine};
use taster_repro::workloads::{epoch_sequence, tpch};

fn main() {
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: 30_000,
        partitions: 8,
        seed: 1,
    });
    let workload = tpch::workload();

    // Three exploration phases: pricing, shipping, then supplier analysis.
    let phases = vec![
        vec!["q1", "q6"],
        vec!["q12", "q19"],
        vec!["q7", "q11", "q20"],
    ];
    let queries = epoch_sequence(&workload, &phases, 8, 99);

    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let taster = TasterEngine::new(catalog, config);

    let mut phase_time = vec![0.0f64; phases.len()];
    for (i, q) in queries.iter().enumerate() {
        let phase = i / 8;
        let res = taster.execute_sql(&q.sql).expect("query runs");
        phase_time[phase] += res.simulated_secs;
        let usage = taster.store().usage();
        println!(
            "q{:02} [{}] {:<28} {:>8.3}s  reuse={:<5} warehouse={:>6.2} MB",
            i + 1,
            phase + 1,
            q.template_id,
            res.simulated_secs,
            !res.reused_synopses.is_empty(),
            usage.warehouse_bytes as f64 / (1 << 20) as f64
        );
    }

    println!("\nsimulated time per exploration phase:");
    for (i, t) in phase_time.iter().enumerate() {
        println!("  phase {}: {:.2}s", i + 1, t);
    }
    println!(
        "synopses known to the metadata store: {} (materialized: {})",
        taster.metadata().num_synopses(),
        taster.store().materialized_ids().len()
    );
    println!("tuner window trajectory: {:?}", taster.window_history());
}
