//! Quickstart: load a small dataset, ask an approximate question, reuse the
//! synopsis Taster materialized as a byproduct.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use taster_repro::storage::batch::BatchBuilder;
use taster_repro::storage::{Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

fn main() {
    // 1. Build a catalog with one fact table: 200k sales rows.
    let n = 200_000usize;
    let sales = BatchBuilder::new()
        .column("s_id", (0..n as i64).collect::<Vec<_>>())
        .column("s_region", (0..n as i64).map(|i| i % 12).collect::<Vec<_>>())
        .column("s_amount", (0..n).map(|i| (i % 500) as f64 / 10.0).collect::<Vec<_>>())
        .build()
        .expect("columns have equal length");
    let catalog = Catalog::new();
    catalog.register(Table::from_batch("sales", sales, 8).expect("valid table"));
    let catalog = Arc::new(catalog);

    // 2. Start Taster with a storage budget of 50% of the dataset.
    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 0.5);
    let taster = TasterEngine::new(catalog, config);

    // 3. Ask an approximate question. The first execution samples the table
    //    online (it still scans it once) and materializes the sample.
    let sql = "SELECT s_region, AVG(s_amount), COUNT(*) FROM sales GROUP BY s_region \
               ERROR WITHIN 5% AT CONFIDENCE 95%";
    let first = taster.execute_sql(sql).expect("query runs");
    println!("-- first run ({})", first.plan_description);
    println!(
        "   scanned {} base rows, created {} synopsis(es), simulated time {:.4}s",
        first.result.metrics.base_rows_scanned,
        first.created_synopses.len(),
        first.simulated_secs
    );

    // 4. Ask again (or ask a similar question): the materialized synopsis is
    //    reused and the base table is not touched at all.
    let second = taster.execute_sql(sql).expect("query runs");
    println!("-- second run ({})", second.plan_description);
    println!(
        "   scanned {} base rows, reused {:?}, simulated time {:.4}s ({}x faster)",
        second.result.metrics.base_rows_scanned,
        second.reused_synopses,
        second.simulated_secs,
        (first.simulated_secs / second.simulated_secs).round()
    );

    // 5. Results carry per-group error bounds.
    println!("-- per-region estimates (value ± CI half-width at 95%)");
    for group in &second.result.groups {
        let avg = &group.aggregates[0];
        println!(
            "   region {:>2}: AVG = {:>6.2} ± {:.2}",
            group.key[0],
            avg.value,
            avg.ci_half_width(0.95)
        );
    }
}
