//! Storage elasticity: the administrator grows and shrinks the synopsis
//! warehouse quota at runtime and Taster adapts which synopses it keeps
//! (the Fig. 9 behaviour, at example scale).
//!
//! Run with: `cargo run --release --example storage_elasticity`

use taster_repro::taster::{TasterConfig, TasterEngine};
use taster_repro::workloads::{random_sequence, tpch};

fn main() {
    let catalog = tpch::generate(tpch::TpchScale {
        lineitem_rows: 30_000,
        partitions: 8,
        seed: 17,
    });
    let dataset_bytes = catalog.total_size_bytes();
    let queries = random_sequence(&tpch::workload(), 60, 4);

    let config = TasterConfig::with_budget_fraction(dataset_bytes, 0.2);
    let taster = TasterEngine::new(catalog, config);

    for (phase, fraction) in [0.2f64, 1.0, 0.1].into_iter().enumerate() {
        let budget = (dataset_bytes as f64 * fraction) as usize;
        taster.set_storage_budget(budget);
        let slice = &queries[phase * 20..(phase + 1) * 20];
        let mut total = 0.0;
        for q in slice {
            total += taster.execute_sql(&q.sql).expect("query runs").simulated_secs;
        }
        let usage = taster.store().usage();
        println!(
            "budget {:>4.0}% ({:>6.2} MB): 20 queries in {:.2}s simulated, warehouse uses {:.2} MB across {} synopses",
            fraction * 100.0,
            budget as f64 / (1 << 20) as f64,
            total,
            usage.warehouse_bytes as f64 / (1 << 20) as f64,
            usage.warehouse_count
        );
    }
}
