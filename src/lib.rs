//! Workspace umbrella crate for the Taster reproduction.
//!
//! This crate re-exports the public API of every member crate so that the
//! runnable examples under `examples/` and the integration tests under
//! `tests/` can use a single dependency. Downstream users should depend on
//! the individual crates (`taster-core`, `taster-engine`, ...) directly.

pub use taster_baselines as baselines;
pub use taster_core as taster;
pub use taster_engine as engine;
pub use taster_server as server;
pub use taster_storage as storage;
pub use taster_synopses as synopses;
pub use taster_workloads as workloads;
