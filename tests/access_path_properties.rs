//! Property tests for index access paths (cost-based access-path planning).
//!
//! 1. **Bit-identity:** executing a scan with an index access-path annotation
//!    returns exactly the same rows, in the same order, as the zone-pruned
//!    scan — for random tables, random predicates (points, ranges, ANDs, ORs,
//!    partially-indexable ANDs) and, crucially, after appends leave an
//!    unsealed, unindexed partition tail. Index paths are a cost choice, never
//!    a correctness choice.
//! 2. **Estimator accuracy:** synopsis-fed selectivities track skew that the
//!    textbook constants (0.1 / 1/3) cannot, so the cost model's row estimates
//!    land near the truth on skewed data.

use std::sync::Arc;

use taster_repro::engine::physical::execute;
use taster_repro::engine::{index_access_path, BinaryOp, ExecutionContext, Expr, LogicalPlan};
use taster_repro::storage::{batch::BatchBuilder, Catalog, Table};
use taster_repro::taster::{CardinalityCache, SynopsisCardinality};

/// Deterministic splitmix-style generator so failures replay exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random table whose key column is *shuffled* — zone maps cover the whole
/// value domain in every partition, so pruning alone cannot skip anything and
/// any row reduction observed under an index path comes from the index probe.
fn random_catalog(seed: u64, rows: usize, partitions: usize) -> Arc<Catalog> {
    let mut rng = Rng(seed);
    let mut key: Vec<i64> = (0..rows as i64).collect();
    for i in (1..key.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        key.swap(i, j);
    }
    let flag: Vec<i64> = (0..rows).map(|_| rng.below(7) as i64).collect();
    let price: Vec<f64> = (0..rows).map(|_| rng.below(1000) as f64 / 10.0).collect();
    let batch = BatchBuilder::new()
        .column("k", key)
        .column("flag", flag)
        .column("price", price)
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("t", batch, partitions).unwrap());
    let t = cat.table("t").unwrap();
    t.create_index("k").unwrap();
    t.create_index("flag").unwrap();
    Arc::new(cat)
}

fn range_op(rng: &mut Rng) -> BinaryOp {
    match rng.below(4) {
        0 => BinaryOp::Lt,
        1 => BinaryOp::LtEq,
        2 => BinaryOp::Gt,
        _ => BinaryOp::GtEq,
    }
}

/// A random predicate mixing indexable and non-indexable shapes.
fn random_predicate(rng: &mut Rng, rows: usize) -> Expr {
    let point = |rng: &mut Rng| {
        Expr::binary(
            Expr::col("k"),
            BinaryOp::Eq,
            // Values past `rows` miss entirely — empty results must match too.
            Expr::lit((rng.below(rows as u64 + rows as u64 / 4)) as i64),
        )
    };
    let range = |rng: &mut Rng| {
        Expr::binary(
            Expr::col("k"),
            range_op(rng),
            Expr::lit(rng.below(rows as u64) as i64),
        )
    };
    let flag_eq =
        |rng: &mut Rng| Expr::binary(Expr::col("flag"), BinaryOp::Eq, Expr::lit(rng.below(8) as i64));
    // `price` has no index: predicates over it keep ANDs partially indexable
    // and make ORs entirely non-indexable.
    let price_lt = |rng: &mut Rng| {
        Expr::binary(
            Expr::col("price"),
            BinaryOp::Lt,
            Expr::lit(rng.below(1000) as f64 / 10.0),
        )
    };
    match rng.below(8) {
        0 => point(rng),
        1 => range(rng),
        2 => flag_eq(rng),
        3 => point(rng).and(flag_eq(rng)),
        4 => range(rng).and(price_lt(rng)),
        5 => Expr::binary(flag_eq(rng), BinaryOp::Or, flag_eq(rng)),
        6 => Expr::binary(point(rng), BinaryOp::Or, price_lt(rng)),
        _ => range(rng).and(flag_eq(rng)).and(price_lt(rng)),
    }
}

fn scan(filter: Expr, access: Option<taster_repro::engine::AccessPath>) -> LogicalPlan {
    LogicalPlan::Scan {
        table: "t".into(),
        filter: Some(filter),
        projection: None,
        access,
    }
}

fn rows_of(plan: &LogicalPlan, cat: &Arc<Catalog>) -> Vec<Vec<String>> {
    let ctx = ExecutionContext::new(cat.clone());
    let res = execute(plan, &ctx).unwrap();
    (0..res.rows.num_rows())
        .map(|i| res.rows.row(i).iter().map(|v| format!("{v:?}")).collect())
        .collect()
}

/// For every derivable index path, the probed + re-filtered result is
/// bit-identical (same rows, same order) to the zone-pruned scan.
#[test]
fn index_paths_match_zone_pruned_scans() {
    for threads in ["1", "4"] {
        std::env::set_var("TASTER_THREADS", threads);
        for seed in 0..6u64 {
            let rows = 2_000 + (seed as usize) * 777;
            let cat = random_catalog(seed + 1, rows, 4);
            let indexed = cat.table("t").unwrap().indexed_columns();
            let mut rng = Rng(0xace0_f00d ^ seed);
            let mut derived = 0usize;
            for _ in 0..24 {
                let pred = random_predicate(&mut rng, rows);
                let baseline = rows_of(&scan(pred.clone(), None), &cat);
                if let Some(path) = index_access_path(&pred, &indexed) {
                    derived += 1;
                    let via_index = rows_of(&scan(pred.clone(), Some(path.clone())), &cat);
                    assert_eq!(
                        via_index, baseline,
                        "index path {path} diverges from scan for {pred:?} (seed {seed}, threads {threads})"
                    );
                }
            }
            assert!(derived > 8, "predicate generator must exercise index paths");
        }
    }
    std::env::remove_var("TASTER_THREADS");
}

/// Appends leave an unsealed tail partition with no index slot; probes must
/// fall back to scanning it, keeping results identical.
#[test]
fn index_paths_survive_appends_with_unindexed_tail() {
    let cat = random_catalog(42, 3_000, 3);
    let t = cat.table("t").unwrap();
    let extra = BatchBuilder::new()
        .column("k", (3_000i64..3_500).collect::<Vec<_>>())
        .column("flag", vec![3i64; 500])
        .column("price", vec![1.5f64; 500])
        .build()
        .unwrap();
    t.append(&extra).unwrap();

    let indexed = t.indexed_columns();
    let mut rng = Rng(0xbeef);
    for _ in 0..24 {
        let pred = random_predicate(&mut rng, 3_500);
        let baseline = rows_of(&scan(pred.clone(), None), &cat);
        if let Some(path) = index_access_path(&pred, &indexed) {
            let via_index = rows_of(&scan(pred.clone(), Some(path.clone())), &cat);
            assert_eq!(via_index, baseline, "post-append divergence for {pred:?}");
        }
    }
    // The appended keys land in the unsealed tail and must still be found.
    let pred = Expr::binary(Expr::col("k"), BinaryOp::Eq, Expr::lit(3_250i64));
    let path = index_access_path(&pred, &indexed).unwrap();
    let hit = rows_of(&scan(pred, Some(path)), &cat);
    assert_eq!(hit.len(), 1, "appended row must be found via the index path");
}

/// On skewed data the synopsis-fed estimator's selectivity is close to the
/// truth while the textbook constant is off by an order of magnitude.
#[test]
fn synopsis_fed_estimates_beat_textbook_constants_on_skew() {
    // 95% of rows carry flag 0; the rest spread over 1..=20.
    let n = 20_000usize;
    let flag: Vec<i64> = (0..n).map(|i| if i % 20 != 0 { 0 } else { 1 + (i / 20) as i64 % 20 }).collect();
    let batch = BatchBuilder::new()
        .column("flag", flag.clone())
        .column("u", (0..n as i64).collect::<Vec<_>>())
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("t", batch, 4).unwrap());

    let cache = CardinalityCache::new();
    let cards = SynopsisCardinality::new(&cat, &cache, 0.2);

    use taster_repro::engine::cost::CardinalityProvider;
    use taster_repro::storage::Value;

    for (value, truth) in [(0i64, 0.95), (7, 0.05 / 20.0)] {
        let est = cards
            .point_selectivity("t", "flag", &Value::Int(value))
            .unwrap();
        let static_err = (0.1f64 - truth).abs();
        let synopsis_err = (est - truth).abs();
        assert!(
            synopsis_err < static_err / 2.0,
            "flag={value}: synopsis estimate {est:.4} (truth {truth:.4}) must beat the 0.1 constant"
        );
    }
    // Range estimates: `u < 2000` is 10% of the table; the 1/3 constant
    // overshoots by >20 points, interpolation lands within 2.
    let est = cards
        .range_selectivity("t", "u", BinaryOp::Lt, &Value::Int(2_000))
        .unwrap();
    assert!((est - 0.1).abs() < 0.02, "interpolated range ≈ 0.1, got {est}");
    assert!((1.0 / 3.0 - 0.1f64).abs() > 0.2);
}
