//! Coalesced synopsis builds: racing sessions share one build, and late
//! arrivals fall back cleanly through the PR 4 lease/graveyard machinery.
//!
//! Two sessions racing the identical `ERROR WITHIN` template plan the same
//! `SampleRequirement`; fingerprint dedup gives both the same synopsis id,
//! and the engine's coalescer must turn the duplicate build into one build
//! plus one lease-and-reuse. With the template's seed pinned, the builder
//! and the coalesced session must return identical results — the coalesced
//! plan aggregates exactly the sample the builder materialized.

use std::sync::{Arc, Barrier};

use taster_repro::storage::{batch::BatchBuilder, Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
const APPROX_SEED: u64 = 0xfeed_f00d;
const ROWS: usize = 200_000; // big enough that the build has a wide race window

fn catalog(rows: usize) -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..rows as i64).collect::<Vec<_>>())
        .column("o_cust", (0..rows as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..rows as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..rows).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    Arc::new(cat)
}

fn engine() -> TasterEngine {
    let cat = catalog(ROWS);
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    TasterEngine::new(cat, config)
}

fn flat(res: &taster_repro::taster::TasterResult) -> Vec<(String, Vec<u64>)> {
    let mut flat: Vec<(String, Vec<u64>)> = res
        .result
        .groups
        .iter()
        .map(|g| {
            (
                format!("{:?}", g.key),
                g.aggregates.iter().map(|a| a.value.to_bits()).collect(),
            )
        })
        .collect();
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    flat
}

/// Two sessions race the identical template; when their build windows
/// overlap (near-certain with a start barrier and a 200k-row build, but
/// retried on fresh engines to make the test deterministic in intent), the
/// engine must perform exactly ONE build, both sessions must resolve to the
/// same synopsis id, and their results must be bit-identical.
#[test]
fn racing_identical_requirements_coalesce_into_one_build() {
    const ATTEMPTS: usize = 20;
    for attempt in 0..ATTEMPTS {
        let eng = engine();
        let start = Barrier::new(2);
        let (a, b) = std::thread::scope(|scope| {
            let eng = &eng;
            let start = &start;
            let ha = scope.spawn(move || {
                start.wait();
                eng.execute_sql_seeded(APPROX_Q, APPROX_SEED)
                    .expect("racer A")
            });
            let hb = scope.spawn(move || {
                start.wait();
                eng.execute_sql_seeded(APPROX_Q, APPROX_SEED)
                    .expect("racer B")
            });
            (ha.join().expect("A"), hb.join().expect("B"))
        });

        // Both sessions must account to the same synopsis id, whether they
        // built it, coalesced onto it, or matched it.
        let ids_a: Vec<_> = a
            .created_synopses
            .iter()
            .chain(a.reused_synopses.iter())
            .collect();
        let ids_b: Vec<_> = b
            .created_synopses
            .iter()
            .chain(b.reused_synopses.iter())
            .collect();
        assert_eq!(ids_a, ids_b, "the racers resolved different synopses");
        assert_eq!(flat(&a), flat(&b), "coalesced result diverged from the build");

        if eng.builds_coalesced() >= 1 {
            assert_eq!(
                eng.synopsis_builds(),
                1,
                "a coalesced race must perform exactly one build"
            );
            assert!(
                a.plan_description.contains("coalesced")
                    || b.plan_description.contains("coalesced"),
                "the coalesced session must say so: {:?} / {:?}",
                a.plan_description,
                b.plan_description
            );
            return; // the interesting interleaving happened and held
        }
        // No overlap this attempt (both builds were serial in wall time is
        // impossible — one session would have matched the materialized
        // synopsis instead — but a racer may have arrived after the build
        // finished entirely). Try again on a fresh engine.
        assert!(
            eng.synopsis_builds() <= 2,
            "never more builds than racers (attempt {attempt})"
        );
    }
    panic!("no overlapping build window in {ATTEMPTS} attempts — widen the race");
}

/// The graveyard fallback the coalescer leans on: a synopsis leased before
/// eviction stays readable through the graveyard until its last lease drops,
/// and the store reaps it afterwards. A session arriving after the reap
/// finds nothing and rebuilds from scratch — queries keep answering across
/// the whole lifecycle.
#[test]
fn eviction_after_lease_keeps_payload_readable_then_reaps() {
    let eng = engine();
    let first = eng.execute_sql_seeded(APPROX_Q, APPROX_SEED).expect("build");
    let id = *first
        .created_synopses
        .first()
        .expect("first run must create the template's synopsis");

    // Lease (as a planning session would), then evict out from under it.
    let lease = eng.store().lease(id).expect("materialized synopsis leases");
    assert!(eng.store().evict(id), "evict the leased synopsis");
    assert!(
        eng.store().graveyard_len() >= 1,
        "a leased evictee moves to the graveyard, not oblivion"
    );
    assert!(
        lease.sample().is_some() || lease.sketch().is_some(),
        "the lease still reads its plan-time payload"
    );

    // A query racing in *after* the eviction must still answer (rebuild or
    // exact — the engine never errors because a synopsis vanished).
    let rerun = eng
        .execute_sql_seeded(APPROX_Q, APPROX_SEED)
        .expect("query after eviction must still answer");
    assert_eq!(flat(&first), flat(&rerun), "pinned seed → identical rebuild");

    // Dropping the last lease reaps the graveyard to zero.
    drop(lease);
    assert_eq!(
        eng.store().graveyard_len(),
        0,
        "last lease release must reap the graveyard"
    );
    assert_eq!(
        eng.store().outstanding_leases(),
        0,
        "no leases left outstanding"
    );
}
