//! Helpers shared by the integration-test suites in `tests/`.
//!
//! `common/` is not itself a test target (cargo only turns the `.rs` files
//! directly under `tests/` into binaries); each suite pulls it in with
//! `mod common;`.

#![allow(dead_code)] // each suite uses a different slice of the helpers

pub mod stats_assert;
