//! ε/δ statistical assertion helpers shared by the property suites.
//!
//! Approximate answers are random variables: a correct estimator can still
//! land outside its error bound on some seeds — that is exactly what "AT
//! CONFIDENCE 95%" licenses. Asserting a hard per-seed bound either flakes
//! or forces the bound so loose it verifies nothing. These helpers make the
//! statistics explicit instead:
//!
//! * [`relative_error`] / [`assert_error_within`] — the single-trial check,
//!   with the degenerate truth-is-zero case handled once,
//! * [`seed_schedule`] / [`run_seeded_trials`] — a deterministic
//!   splitmix64-derived seed schedule driving repeated independent trials,
//! * [`TrialReport::assert_confidence`] — the repeated-trial check: the
//!   in-bound *rate* must be consistent with the stated confidence, minus a
//!   three-sigma binomial tail allowance so an honest estimator passes with
//!   overwhelming probability while a biased one still fails.

/// One splitmix64 step. Used to derive per-trial seeds from a base seed:
/// consecutive outputs are statistically independent even though the
/// schedule is fully deterministic.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic per-trial seed schedule for `trials` trials derived
/// from `base`. Changing `base` explores a different slice of the input
/// space; the schedule itself never depends on wall-clock or trial order.
pub fn seed_schedule(base: u64, trials: usize) -> Vec<u64> {
    let mut state = base;
    (0..trials).map(|_| splitmix64(&mut state)).collect()
}

/// `|estimate − truth| / |truth|`, with the zero-truth case pinned: an
/// estimate of exactly zero is a perfect answer, anything else is infinitely
/// wrong (rather than a NaN that slips through `<` assertions).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Hard single-trial bound: `relative_error(estimate, truth) ≤ bound`.
pub fn assert_error_within(estimate: f64, truth: f64, bound: f64, ctx: &str) {
    let err = relative_error(estimate, truth);
    assert!(
        err <= bound,
        "relative error {err:.4} exceeds bound {bound} (estimate {estimate}, truth {truth}; {ctx})"
    );
}

/// Hard bound on an already-computed relative error (e.g. the worst group of
/// a GROUP BY comparison). NaN fails rather than slipping through `<`.
pub fn assert_bounded(err: f64, bound: f64, ctx: &str) {
    assert!(
        err <= bound,
        "relative error {err:.4} exceeds bound {bound} ({ctx})"
    );
}

/// Outcome of a repeated-trial run: how many trials landed inside their
/// error bound out of how many were run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialReport {
    /// Trials whose estimate met the bound.
    pub within: usize,
    /// Total trials run.
    pub total: usize,
}

impl TrialReport {
    /// Assert that the in-bound rate is consistent with `confidence`: the
    /// observed rate must be at least `confidence − 3·σ` where `σ` is the
    /// binomial standard error at `total` trials. At 100 trials and 95%
    /// confidence the allowance is ≈ 6.5 points — an honest estimator fails
    /// this with probability ≈ 0.1%, a meaningfully biased one reliably.
    pub fn assert_confidence(&self, confidence: f64, ctx: &str) {
        assert!(self.total > 0, "no trials were run ({ctx})");
        let rate = self.within as f64 / self.total as f64;
        let sigma = (confidence * (1.0 - confidence) / self.total as f64).sqrt();
        let floor = confidence - 3.0 * sigma;
        assert!(
            rate >= floor,
            "only {}/{} trials within bound (rate {rate:.3}, need ≥ {floor:.3} \
             for confidence {confidence}; {ctx})",
            self.within,
            self.total
        );
    }
}

/// Run `trials` independent trials over the [`seed_schedule`] of `base`;
/// `trial` returns whether its estimate landed inside the error bound.
pub fn run_seeded_trials(
    base: u64,
    trials: usize,
    mut trial: impl FnMut(u64) -> bool,
) -> TrialReport {
    let mut within = 0;
    for seed in seed_schedule(base, trials) {
        if trial(seed) {
            within += 1;
        }
    }
    TrialReport {
        within,
        total: trials,
    }
}
