//! Concurrent delete + compact + query + ingest soak (the statistical-bias
//! verification harness, part 2: snapshot atomicity under churn).
//!
//! One engine, four concurrent roles — an ingester appending batches, a
//! deleter tombstoning id ranges, the background compactor re-sealing
//! partitions past the dead-row threshold, and queriers running exact scans
//! and approximate aggregates. Invariants:
//!
//! * **No half-compacted snapshot** — every exact scan sees an atomic state:
//!   no id twice (compaction never duplicates rows), every delete completed
//!   before the scan is invisible, every append published before the scan is
//!   visible unless a concurrent delete targeted it (checked against the
//!   deleter's *started* set, read after the scan, so in-flight deletes
//!   cannot fake a lost row).
//! * **Deterministic end state** — the mutation schedules derive entirely
//!   from `stats_assert::seed_schedule`, so after the soak quiesces the live
//!   set is exactly `[0, TOTAL)` minus the scheduled ranges, dictionary
//!   columns included — however the compactor interleaved.
//! * **Staleness bound holds** — the synopses serving the post-quiesce query
//!   are within the configured `max_staleness` of the mutated table; the
//!   tuner must have refreshed (or rebuilt) them rather than serve drift.

mod common;
use common::stats_assert;

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use taster_repro::engine::physical::execute;
use taster_repro::engine::{BinaryOp, ExecutionContext, Expr, LogicalPlan};
use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, Table, Value};
use taster_repro::taster::{TasterConfig, TasterEngine};

const GROUPS: i64 = 6;
const CATS: [&str; 3] = ["alpha", "beta", "gamma"];
const APPROX_SQL: &str =
    "SELECT grp, SUM(val) FROM t GROUP BY grp ERROR WITHIN 10% AT CONFIDENCE 95%";

fn rows_batch(lo: i64, hi: i64) -> RecordBatch {
    BatchBuilder::new()
        .column("id", (lo..hi).collect::<Vec<_>>())
        .column("grp", (lo..hi).map(|i| i % GROUPS).collect::<Vec<_>>())
        .column("val", (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .column(
            "cat",
            (lo..hi).map(|i| CATS[(i % 3) as usize]).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn id_pred(lo: i64, hi: i64) -> [Expr; 2] {
    [
        Expr::binary(Expr::col("id"), BinaryOp::GtEq, Expr::Literal(Value::Int(lo))),
        Expr::binary(Expr::col("id"), BinaryOp::Lt, Expr::Literal(Value::Int(hi))),
    ]
}

/// `(id, cat)` pairs of a full exact scan — one atomic snapshot.
fn scan_ids(cat: &Arc<Catalog>) -> Vec<(i64, String)> {
    let plan = LogicalPlan::Scan {
        table: "t".into(),
        filter: None,
        projection: None,
        access: None,
    };
    let result = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
    let b = &result.rows;
    let id = b.column_by_name("id").unwrap();
    let catc = b.column_by_name("cat").unwrap();
    (0..b.num_rows())
        .map(|i| {
            let s = match catc.value(i) {
                Value::Str(s) => s,
                other => panic!("cat column yielded {other:?}"),
            };
            (id.value(i).as_i64().unwrap(), s)
        })
        .collect()
}

#[test]
fn concurrent_delete_compact_query_ingest_soak() {
    const INITIAL: i64 = 4_000;
    const ROUNDS: usize = 24;
    const BATCH: i64 = 1_000;
    const TOTAL: i64 = INITIAL + ROUNDS as i64 * BATCH;

    // Deterministic mutation schedule: one delete range per seed, strictly
    // below TOTAL, pairwise disjoint by construction (one range per stride).
    let delete_ranges: Vec<(i64, i64)> = stats_assert::seed_schedule(0xc0ac_7ed5, 20)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let stride = TOTAL / 20;
            let lo = i as i64 * stride + (s % (stride as u64 / 2)) as i64;
            let len = 100 + (s >> 32) as i64 % (stride / 2 - 100).max(1);
            (lo, (lo + len).min((i as i64 + 1) * stride))
        })
        .collect();

    let cat = Catalog::new();
    cat.register(Table::from_batch("t", rows_batch(0, INITIAL), 8).unwrap());
    let cat = Arc::new(cat);
    let config = TasterConfig {
        compact_dead_fraction: 0.2,
        ..TasterConfig::with_budget_fraction(cat.total_size_bytes() * 8, 1.0)
    };
    let eng = Arc::new(TasterEngine::new(cat.clone(), config));

    // Published progress: `floor` rises only after an append committed;
    // `started`/`completed` bracket each delete batch.
    let floor = Arc::new(Mutex::new(INITIAL));
    let started: Arc<Mutex<Vec<(i64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let completed: Arc<Mutex<Vec<(i64, i64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut compactor = eng.start_background_compactor(Duration::from_millis(2));

    std::thread::scope(|scope| {
        // Ingester: publish the contiguous floor after each committed append.
        {
            let (cat, floor) = (cat.clone(), floor.clone());
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let lo = INITIAL + r as i64 * BATCH;
                    cat.table("t").unwrap().append(&rows_batch(lo, lo + BATCH)).unwrap();
                    *floor.lock().unwrap() = lo + BATCH;
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        // Deleter: wait until a range is fully ingested, then tombstone it.
        {
            let (eng, floor) = (eng.clone(), floor.clone());
            let (started, completed) = (started.clone(), completed.clone());
            let ranges = delete_ranges.clone();
            scope.spawn(move || {
                for (lo, hi) in ranges {
                    while *floor.lock().unwrap() < hi {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    started.lock().unwrap().push((lo, hi));
                    let report = eng.delete_where("t", &id_pred(lo, hi)).unwrap();
                    assert_eq!(report.rows_affected, (hi - lo) as usize, "range [{lo},{hi})");
                    completed.lock().unwrap().push((lo, hi));
                }
            });
        }
        // Queriers: exact atomic-snapshot audits plus approximate queries.
        for q in 0..2 {
            let (eng, cat, floor) = (eng.clone(), cat.clone(), floor.clone());
            let (started, completed) = (started.clone(), completed.clone());
            scope.spawn(move || {
                for round in 0..12 {
                    // Read floor/completed BEFORE the scan, started AFTER:
                    // anything completed must be invisible, anything absent
                    // must have at least started.
                    let f = *floor.lock().unwrap();
                    let gone: Vec<(i64, i64)> = completed.lock().unwrap().clone();
                    let seen = scan_ids(&cat);
                    let maybe_gone: Vec<(i64, i64)> = started.lock().unwrap().clone();

                    let mut ids = HashSet::with_capacity(seen.len());
                    for (id, cat_val) in &seen {
                        assert!(ids.insert(*id), "querier {q} round {round}: id {id} twice");
                        assert_eq!(*cat_val, CATS[(*id % 3) as usize], "id {id} cat corrupted");
                    }
                    for &(lo, hi) in &gone {
                        for id in lo..hi {
                            assert!(!ids.contains(&id), "querier {q} round {round}: deleted id {id} resurrected");
                        }
                    }
                    let may_be_missing: HashSet<i64> = maybe_gone
                        .iter()
                        .flat_map(|&(lo, hi)| lo..hi)
                        .collect();
                    for id in 0..f {
                        assert!(
                            ids.contains(&id) || may_be_missing.contains(&id),
                            "querier {q} round {round}: live id {id} lost"
                        );
                    }

                    let res = eng.execute_sql(APPROX_SQL).unwrap();
                    assert!(res.result.num_groups() > 0);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
    });
    // One more explicit sweep now that every delete has landed, then stop
    // the background compactor (its Drop would stop it too).
    eng.compact_now().unwrap();
    compactor.stop();

    // Deterministic end state: exactly [0, TOTAL) minus the scheduled
    // ranges, with dictionary-encoded values intact — however compaction
    // interleaved with the mutators.
    let mut expect: HashMap<i64, &str> = (0..TOTAL).map(|i| (i, CATS[(i % 3) as usize])).collect();
    for &(lo, hi) in &delete_ranges {
        for id in lo..hi {
            expect.remove(&id);
        }
    }
    let live = scan_ids(&cat);
    assert_eq!(live.len(), expect.len(), "final live count diverged");
    for (id, cat_val) in &live {
        assert_eq!(expect.get(id).copied(), Some(cat_val.as_str()), "final state: id {id}");
    }

    // Staleness bound: the synopses serving the post-quiesce answer are
    // within max_staleness of the mutated table.
    let res = eng.execute_sql(APPROX_SQL).unwrap();
    let table = cat.table("t").unwrap();
    let (rows_now, deletes_now) = (table.num_rows(), table.deletes_logged());
    let metadata = eng.metadata();
    for id in res.created_synopses.iter().chain(res.reused_synopses.iter()) {
        let meta = metadata.get(*id).expect("serving synopsis has metadata");
        let staleness = meta.total_staleness(rows_now, deletes_now);
        assert!(
            staleness <= config.max_staleness + 1e-9,
            "synopsis {id} served at staleness {staleness} (bound {})",
            config.max_staleness
        );
    }
}
