//! Concurrent soak test for the multi-session [`TasterEngine`].
//!
//! N threads share ONE engine (`execute_sql` takes `&self`) and hammer it
//! with a fixed workload under a fixed seed schedule. Because every query of
//! a template runs with the same pinned seed, a query's result is independent
//! of thread interleaving: whichever session builds the template's synopsis
//! builds the identical sample, and reuse plans aggregate the identical rows.
//! The soak therefore checks the concurrent run **query-for-query** against a
//! serial run of the same schedule — any synopsis-lifetime race (a tuner
//! evicting a matched synopsis out from under an in-flight plan) would
//! surface as an execution error or a diverging result.

use std::sync::Arc;

use taster_repro::storage::{batch::BatchBuilder, Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

/// Approximable template: builds (then reuses) a distinct sample of `orders`.
const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
/// Exact template over the dimension table (no sample can satisfy it, so the
/// tuner always picks the exact plan) — exercises the loop's exact path
/// concurrently with the synopsis path.
const EXACT_Q: &str = "SELECT c_region, COUNT(*) FROM customer GROUP BY c_region";

/// One seed per template: every instance of a template samples identically,
/// which is what makes the workload order-insensitive.
const APPROX_SEED: u64 = 0xdead_beef_cafe;

const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 8;

fn catalog(rows: usize) -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..rows as i64).collect::<Vec<_>>())
        .column("o_cust", (0..rows as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..rows as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..rows).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    let cust = BatchBuilder::new()
        .column("c_id", (0..100i64).collect::<Vec<_>>())
        .column("c_region", (0..100i64).map(|i| i % 4).collect::<Vec<_>>())
        .build()
        .unwrap();
    cat.register(Table::from_batch("customer", cust, 1).unwrap());
    Arc::new(cat)
}

fn engine() -> TasterEngine {
    let cat = catalog(50_000);
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    TasterEngine::new(cat, config)
}

/// A query result flattened to comparable form: sorted `(group key, values)`.
type FlatResult = Vec<(String, Vec<f64>)>;

fn run_one(engine: &TasterEngine, sql: &str, seed: u64) -> FlatResult {
    let res = engine
        .execute_sql_seeded(sql, seed)
        .expect("query must not fail, even when its synopsis is evicted mid-flight");
    let mut flat: FlatResult = res
        .result
        .groups
        .iter()
        .map(|g| {
            (
                format!("{:?}", g.key),
                g.aggregates.iter().map(|a| a.value).collect(),
            )
        })
        .collect();
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    flat
}

/// The per-thread schedule: alternating approximate and exact templates.
fn schedule() -> Vec<(&'static str, u64)> {
    (0..QUERIES_PER_THREAD)
        .map(|i| {
            if i % 2 == 0 {
                (APPROX_Q, APPROX_SEED)
            } else {
                (EXACT_Q, APPROX_SEED + 1)
            }
        })
        .collect()
}

/// Serial reference: the same schedule on a fresh engine, single-threaded.
/// Returns one reference result per template (and asserts the serial run
/// itself is internally consistent: every instance of a template agrees).
fn serial_reference() -> (FlatResult, FlatResult) {
    let eng = engine();
    let mut approx_ref: Option<FlatResult> = None;
    let mut exact_ref: Option<FlatResult> = None;
    for _ in 0..THREADS {
        for (sql, seed) in schedule() {
            let flat = run_one(&eng, sql, seed);
            let slot = if sql == APPROX_Q {
                &mut approx_ref
            } else {
                &mut exact_ref
            };
            match slot {
                Some(prev) => assert_eq!(
                    prev, &flat,
                    "serial run must be internally deterministic for {sql}"
                ),
                None => *slot = Some(flat),
            }
        }
    }
    (approx_ref.unwrap(), exact_ref.unwrap())
}

fn concurrent_run(approx_ref: &FlatResult, exact_ref: &FlatResult) {
    let eng = engine();
    std::thread::scope(|scope| {
        let eng = &eng;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    for (sql, seed) in schedule() {
                        let flat = run_one(eng, sql, seed);
                        let expect = if sql == APPROX_Q { approx_ref } else { exact_ref };
                        assert_eq!(
                            &flat, expect,
                            "concurrent result diverged from the serial run for {sql}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("session thread must not panic");
        }
    });

    // Post-soak store invariants: no tier over quota (manage_buffer ran after
    // every query), byte accounting matches the live entries, and the
    // approximate template's synopsis is still materialized for reuse.
    let usage = eng.store().usage();
    assert!(
        usage.buffer_bytes <= usage.buffer_quota,
        "buffer over quota after soak: {usage:?}"
    );
    assert!(
        usage.warehouse_bytes <= usage.warehouse_quota,
        "warehouse over quota after soak: {usage:?}"
    );
    let ids = eng.store().materialized_ids();
    assert_eq!(
        ids.len(),
        usage.buffer_count + usage.warehouse_count,
        "id listing and tier counts must agree: {ids:?} vs {usage:?}"
    );
    let accounted: usize = ids
        .iter()
        .filter_map(|&id| eng.store().size_of(id))
        .sum();
    assert_eq!(
        accounted,
        usage.buffer_bytes + usage.warehouse_bytes,
        "byte accounting must match the live entries (no double counting)"
    );
    assert!(
        !ids.is_empty(),
        "the reused synopsis must still be materialized"
    );
}

#[test]
fn concurrent_soak_matches_serial_run_query_for_query() {
    let (approx_ref, exact_ref) = serial_reference();
    assert!(!approx_ref.is_empty() && !exact_ref.is_empty());
    // Two independent concurrent soaks: the run must be deterministic, not
    // just correct once.
    concurrent_run(&approx_ref, &exact_ref);
    concurrent_run(&approx_ref, &exact_ref);
}

/// The engine's own seed schedule (`execute_sql`) admits queries atomically:
/// a concurrent burst consumes exactly one seed slot per query and the
/// counter never loses an increment.
#[test]
fn seed_schedule_slots_are_unique_under_contention() {
    let eng = engine();
    std::thread::scope(|scope| {
        let eng = &eng;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    for _ in 0..3 {
                        eng.execute_sql(EXACT_Q).expect("query runs");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(eng.queries_executed(), (THREADS * 3) as u64);
}
