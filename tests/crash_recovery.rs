//! Crash soak on the real filesystem: SIGKILL a child ingest process
//! mid-append and recover its directory.
//!
//! The deterministic fault-injection suite (`tests/recovery_properties.rs`)
//! pins faults to exact operations; this soak is the unscripted complement —
//! the child is killed at an arbitrary instruction boundary while it appends
//! and queries through a durable [`TasterEngine`] on `StdVfs`, so the bytes
//! on disk are whatever a real crash would leave. Recovery must still land
//! on a commit boundary: whole appends only, a queryable engine, and an
//! idempotent second recovery.
//!
//! The child is this same test binary re-executed with `--exact --ignored`
//! on [`crash_soak_child_ingest`], pointed at the scratch directory via
//! `TASTER_CRASH_DIR` (the ignored test is a no-op without it).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taster_repro::engine::physical::execute;
use taster_repro::engine::{parse_query, BinaryOp, ExecutionContext, Expr};
use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, Table, Value};
use taster_repro::taster::{TasterConfig, TasterEngine};

const ENV_DIR: &str = "TASTER_CRASH_DIR";
const ENV_DIR_MUT: &str = "TASTER_CRASH_DIR_MUT";
const BASE: usize = 2_000;
const APPEND: usize = 250;
/// Rows each mutation round deletes out of the batch it just appended.
const DEL: usize = 100;
const SQL: &str = "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag";

fn orders_rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
        .column("o_flag", (lo as i64..hi as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn config(cat: &Catalog) -> TasterConfig {
    TasterConfig {
        initial_window: 64,
        adaptive_window: false,
        ..TasterConfig::with_budget_fraction(cat.total_size_bytes() * 4, 1.0)
    }
}

/// The victim: opened with `--exact crash_soak_child_ingest --ignored` and
/// `TASTER_CRASH_DIR` set, it ingests and queries until its parent kills it.
#[test]
#[ignore = "child half of the crash soak; driven by sigkill_mid_ingest_recovers_to_commit_boundary"]
fn crash_soak_child_ingest() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, BASE), 8).unwrap());
    let cat = Arc::new(cat);
    let eng = TasterEngine::open_durable(cat.clone(), config(&cat), &dir).unwrap();
    // Bounded far beyond the parent's kill point; each round is one logged
    // append plus one query-driven warehouse sync.
    for i in 0..100_000usize {
        let lo = BASE + i * APPEND;
        cat.table("orders")
            .unwrap()
            .append(&orders_rows(lo, lo + APPEND))
            .unwrap();
        let _ = eng.execute_sql(SQL).unwrap();
    }
}

fn recovered_rows(dir: &Path, cfg: TasterConfig) -> (usize, usize) {
    let (eng, report) = TasterEngine::recover(cfg, dir)
        .unwrap_or_else(|e| panic!("recovery after SIGKILL failed: {e}"));
    let rows = eng
        .catalog_handle()
        .table("orders")
        .map(|t| t.num_rows())
        .unwrap_or(0);
    if rows > 0 {
        let res = eng
            .execute_sql(SQL)
            .unwrap_or_else(|e| panic!("recovered engine cannot answer: {e}"));
        assert!(res.result.num_groups() > 0);
    }
    (rows, report.synopses_dropped)
}

#[test]
fn sigkill_mid_ingest_recovers_to_commit_boundary() {
    let scratch = std::env::temp_dir().join(format!(
        "taster-crash-soak-{}-{:x}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    std::fs::create_dir_all(&scratch).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", "crash_soak_child_ingest", "--ignored"])
        .env(ENV_DIR, &scratch)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child ingest process");

    // Let the child get well past its initial checkpoint: wait for the WAL
    // to grow with appends, then kill it mid-flight. SIGKILL (what
    // `Child::kill` sends on unix) gives it no chance to flush or unwind.
    let wal = scratch.join("wal.log");
    let target = 64 * 1024u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if len >= target {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("child exited early ({status}) with WAL at {len} bytes");
        }
        assert!(Instant::now() < deadline, "child made no progress (WAL {len} B)");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the child");
    let _ = child.wait();

    // Recover what survived. The kill lands at an arbitrary point, so the
    // exact row count is unknown — but it must be base + whole batches.
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, BASE), 8).unwrap());
    let cfg = config(&cat);
    drop(cat);

    let (rows, _) = recovered_rows(&scratch, cfg);
    assert!(rows >= BASE, "initial checkpoint must survive (got {rows})");
    assert_eq!(
        (rows - BASE) % APPEND,
        0,
        "recovered {rows} rows: a torn append leaked into the table"
    );

    // Recovery is idempotent on a crash-shaped directory too.
    let (rows_again, dropped_again) = recovered_rows(&scratch, cfg);
    assert_eq!(rows, rows_again, "second recovery diverged");
    assert_eq!(dropped_again, 0, "first recovery left invalid synopses behind");

    std::fs::remove_dir_all(&scratch).ok();
}

/// The mutation victim: each round appends one batch and then deletes the
/// first [`DEL`] rows of it through the WAL-logged delete path, so a SIGKILL
/// can land between an append commit and its delete commit — but never
/// inside either.
#[test]
#[ignore = "child half of the delete crash soak; driven by sigkill_mid_mutation_recovers_tombstones"]
fn crash_soak_child_mutate() {
    let Ok(dir) = std::env::var(ENV_DIR_MUT) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, BASE), 8).unwrap());
    let cat = Arc::new(cat);
    let eng = TasterEngine::open_durable(cat.clone(), config(&cat), &dir).unwrap();
    for i in 0..100_000usize {
        let lo = BASE + i * APPEND;
        cat.table("orders")
            .unwrap()
            .append(&orders_rows(lo, lo + APPEND))
            .unwrap();
        eng.delete_where(
            "orders",
            &[
                Expr::binary(
                    Expr::col("o_id"),
                    BinaryOp::GtEq,
                    Expr::Literal(Value::Int(lo as i64)),
                ),
                Expr::binary(
                    Expr::col("o_id"),
                    BinaryOp::Lt,
                    Expr::Literal(Value::Int((lo + DEL) as i64)),
                ),
            ],
        )
        .unwrap();
        let _ = eng.execute_sql(SQL).unwrap();
    }
}

fn exact_count(eng: &TasterEngine, sql: &str) -> f64 {
    let cat = eng.catalog_handle();
    let plan = parse_query(sql).unwrap().to_exact_plan(&cat).unwrap();
    let result = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
    // A global aggregate over zero matching rows yields no group at all.
    result.groups.first().map_or(0.0, |g| g.aggregates[0].value)
}

/// SIGKILL while the child interleaves logged appends and deletes: recovery
/// must land on an exact mutation-batch boundary — whole appends, whole
/// delete batches, tombstones intact — never a torn mutation.
#[test]
fn sigkill_mid_mutation_recovers_tombstones() {
    let scratch = std::env::temp_dir().join(format!(
        "taster-crash-mutate-{}-{:x}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    std::fs::create_dir_all(&scratch).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", "crash_soak_child_mutate", "--ignored"])
        .env(ENV_DIR_MUT, &scratch)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child mutation process");

    let wal = scratch.join("wal.log");
    let target = 64 * 1024u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if len >= target {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("child exited early ({status}) with WAL at {len} bytes");
        }
        assert!(Instant::now() < deadline, "child made no progress (WAL {len} B)");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL the child");
    let _ = child.wait();

    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, BASE), 8).unwrap());
    let cfg = config(&cat);
    drop(cat);

    let (eng, _) = TasterEngine::recover(cfg, &scratch)
        .unwrap_or_else(|e| panic!("recovery after SIGKILL failed: {e}"));
    let table = eng.catalog_handle().table("orders").unwrap();
    let live = table.snapshot().live_rows();
    assert!(live >= BASE, "initial checkpoint must survive (live {live})");

    // Each complete round nets +150 live rows (250 appended − 100 deleted);
    // a kill between the halves leaves one extra whole append (+250). So
    // `live − BASE` is `150·k` (round boundary) or `150·k + 250` ≡ 100
    // (mod 150) (append committed, its delete not yet). Any other residue
    // means a torn mutation batch leaked.
    let extra = live - BASE;
    let full_rounds = match extra % 150 {
        0 => extra / 150,
        100 => (extra - 250) / 150,
        residue => panic!("live − base = {extra} (residue {residue}): torn mutation batch"),
    };

    // Tombstones intact: every committed delete batch's id-range is gone.
    // (Spot-check the first and last committed rounds plus the total.)
    let total = exact_count(&eng, "SELECT COUNT(*) FROM orders");
    assert_eq!(total, live as f64, "exact COUNT disagrees with live rows");
    for round in [0, full_rounds.saturating_sub(1)] {
        if round < full_rounds {
            let lo = BASE + round * APPEND;
            let gone = exact_count(
                &eng,
                &format!("SELECT COUNT(*) FROM orders WHERE o_id >= {lo} AND o_id < {}", lo + DEL),
            );
            assert_eq!(gone, 0.0, "round {round}: deleted rows resurrected");
            let kept = exact_count(
                &eng,
                &format!(
                    "SELECT COUNT(*) FROM orders WHERE o_id >= {} AND o_id < {}",
                    lo + DEL,
                    lo + APPEND
                ),
            );
            assert_eq!(kept, (APPEND - DEL) as f64, "round {round}: surviving rows lost");
        }
    }

    // Idempotent second recovery lands on the same boundary.
    drop(eng);
    let (again, report) = TasterEngine::recover(cfg, &scratch).unwrap();
    assert_eq!(
        again.catalog_handle().table("orders").unwrap().snapshot().live_rows(),
        live,
        "second recovery diverged"
    );
    assert_eq!(report.synopses_dropped, 0, "first recovery left invalid synopses");

    std::fs::remove_dir_all(&scratch).ok();
}
