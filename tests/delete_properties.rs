//! Property tests for tombstone deletes and updates (the statistical-bias
//! verification harness, part 1).
//!
//! * **Exact-query bit-identity** — after any random interleaving of
//!   appends, predicate deletes and predicate updates, a filtered scan and
//!   an exact GROUP BY aggregate through the engine return exactly what a
//!   brute-force reference model of the live rows returns. The generated
//!   table mixes raw and dictionary-encoded (string) columns and sealed
//!   partitions with an unsealed tail; tombstones must be ANDed into every
//!   scan and never change a surviving row.
//! * **ErrorSpec under heavy deletes** — after deleting up to 50% of rows,
//!   approximate answers stay inside the query's `ERROR WITHIN 10%` bound at
//!   the stated 95% confidence, verified over 100 seeded trials with a
//!   binomial tail allowance (`tests/common/stats_assert.rs`). A missing
//!   tombstone correction biases SUM by the deleted fraction (up to 2×) and
//!   fails every trial.
//! * **Correlated deletes** — deletes targeting the aggregated column
//!   itself (the adversarial case for in-place reweighting) push deletion
//!   staleness past the tuner's bound, which must rebuild the synopsis from
//!   live rows instead of serving the drifted estimate.
//!
//! The CI matrix runs this suite under `TASTER_THREADS={1,4}`; the
//! properties are thread-count invariant (results are compared as sorted
//! multisets).

mod common;
use common::stats_assert;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use std::collections::HashMap;
use std::sync::Arc;
use taster_repro::engine::physical::execute;
use taster_repro::engine::{parse_query, BinaryOp, ExecutionContext, Expr, LogicalPlan};
use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, Table, Value};
use taster_repro::taster::{TasterConfig, TasterEngine};

/// The reference model row; the engine must behave as if the table were this
/// `Vec<Row>` with matching rows removed/rewritten in place.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    id: i64,
    grp: i64,
    val: f64,
    cat: &'static str,
}

/// Values for the dictionary-encoded string column.
const CATS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn gen_rows(rng: &mut SmallRng, next_id: &mut i64, n: usize, groups: i64) -> Vec<Row> {
    (0..n)
        .map(|_| {
            let id = *next_id;
            *next_id += 1;
            Row {
                id,
                grp: rng.random_range(0..groups),
                // Integer-valued floats: sums are exact in f64 regardless of
                // accumulation order, so exact comparisons are bit-identical.
                val: rng.random_range(0..1_000) as f64,
                cat: CATS[rng.random_range(0..4u32) as usize],
            }
        })
        .collect()
}

fn make_batch(rows: &[Row]) -> RecordBatch {
    BatchBuilder::new()
        .column("id", rows.iter().map(|r| r.id).collect::<Vec<_>>())
        .column("grp", rows.iter().map(|r| r.grp).collect::<Vec<_>>())
        .column("val", rows.iter().map(|r| r.val).collect::<Vec<_>>())
        .column("cat", rows.iter().map(|r| r.cat).collect::<Vec<_>>())
        .build()
        .unwrap()
}

fn pred(column: &str, op: BinaryOp, literal: Value) -> Expr {
    Expr::binary(Expr::col(column), op, Expr::Literal(literal))
}

/// A random predicate over the generated schema, as both the engine
/// expression and the equivalent model closure. Covers raw integer columns
/// and the dictionary-encoded string column.
#[allow(clippy::type_complexity)]
fn random_predicate(
    rng: &mut SmallRng,
    id_span: i64,
    groups: i64,
) -> (Expr, Box<dyn Fn(&Row) -> bool>) {
    match rng.random_range(0..4u32) {
        0 => {
            let p = rng.random_range(0..id_span.max(1));
            (pred("id", BinaryOp::Lt, Value::Int(p)), Box::new(move |r| r.id < p))
        }
        1 => {
            let p = rng.random_range(0..id_span.max(1));
            (pred("id", BinaryOp::GtEq, Value::Int(p)), Box::new(move |r| r.id >= p))
        }
        2 => {
            let g = rng.random_range(0..groups);
            (pred("grp", BinaryOp::Eq, Value::Int(g)), Box::new(move |r| r.grp == g))
        }
        _ => {
            let c = CATS[rng.random_range(0..4u32) as usize];
            (
                pred("cat", BinaryOp::Eq, Value::Str(c.to_string())),
                Box::new(move |r| r.cat == c),
            )
        }
    }
}

/// The engine's filtered-scan output as a sorted multiset of row tuples.
fn scan_rows(cat: &Arc<Catalog>, filter: Expr) -> Vec<(i64, i64, u64, String)> {
    let plan = LogicalPlan::Scan {
        table: "t".into(),
        filter: Some(filter),
        projection: None,
        access: None,
    };
    let result = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
    let b = &result.rows;
    let id = b.column_by_name("id").unwrap();
    let grp = b.column_by_name("grp").unwrap();
    let val = b.column_by_name("val").unwrap();
    let catc = b.column_by_name("cat").unwrap();
    let mut out: Vec<(i64, i64, u64, String)> = (0..b.num_rows())
        .map(|i| {
            let s = match catc.value(i) {
                Value::Str(s) => s,
                other => panic!("cat column yielded {other:?}"),
            };
            (
                id.value(i).as_i64().unwrap(),
                grp.value(i).as_i64().unwrap(),
                val.value(i).as_f64().unwrap().to_bits(),
                s,
            )
        })
        .collect();
    out.sort_unstable();
    out
}

fn model_rows(model: &[Row], keep: &dyn Fn(&Row) -> bool) -> Vec<(i64, i64, u64, String)> {
    let mut out: Vec<(i64, i64, u64, String)> = model
        .iter()
        .filter(|r| keep(r))
        .map(|r| (r.id, r.grp, r.val.to_bits(), r.cat.to_string()))
        .collect();
    out.sort_unstable();
    out
}

/// Exact queries are bit-identical to the brute-force reference after any
/// random interleaving of appends, deletes and updates.
#[test]
fn mutated_exact_queries_match_brute_force() {
    for (case, seed) in stats_assert::seed_schedule(0xde1e_7e57, 8)
        .into_iter()
        .enumerate()
    {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_id = 0i64;
        let groups = rng.random_range(3..10i64);
        let initial = rng.random_range(2_000..6_000usize);
        let parts = rng.random_range(2..7usize);
        let mut model = gen_rows(&mut rng, &mut next_id, initial, groups);

        let cat = Catalog::new();
        cat.register(Table::from_batch("t", make_batch(&model), parts).unwrap());
        let cat = Arc::new(cat);
        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes().max(1), 1.0);
        let eng = TasterEngine::new(cat.clone(), config);

        for op in 0..10 {
            let ctx = format!("case {case} (seed {seed:#x}) op {op}");
            match rng.random_range(0..4u32) {
                0 => {
                    // Append: rows land in the unsealed tail (in-place
                    // deletes) while earlier partitions are sealed
                    // (tombstoned deletes) — both paths stay exercised.
                    let n = rng.random_range(100..1_500usize);
                    let rows = gen_rows(&mut rng, &mut next_id, n, groups);
                    cat.table("t").unwrap().append(&make_batch(&rows)).unwrap();
                    model.extend(rows);
                }
                1 => {
                    let (expr, matches) = random_predicate(&mut rng, next_id, groups);
                    let report = eng.delete_where("t", &[expr]).unwrap();
                    let before = model.len();
                    model.retain(|r| !matches(r));
                    assert_eq!(report.rows_affected, before - model.len(), "{ctx}");
                }
                2 => {
                    // Update = delete + re-append: matched rows move to the
                    // end of the model with the assigned value.
                    let new_val = rng.random_range(0..1_000) as f64;
                    let (expr, matches) = random_predicate(&mut rng, next_id, groups);
                    let report = eng
                        .update_where("t", &[("val".to_string(), Value::Float(new_val))], &[expr])
                        .unwrap();
                    let (mut moved, kept): (Vec<Row>, Vec<Row>) =
                        model.drain(..).partition(|r| matches(r));
                    assert_eq!(report.rows_affected, moved.len(), "{ctx}");
                    for r in &mut moved {
                        r.val = new_val;
                    }
                    model = kept;
                    model.extend(moved);
                }
                _ => {} // query-only round
            }

            let (expr, matches) = random_predicate(&mut rng, next_id, groups);
            assert_eq!(
                scan_rows(&cat, expr),
                model_rows(&model, &*matches),
                "filtered scan diverged from brute force ({ctx})"
            );
        }

        // Exact aggregates over the final state: SUM/COUNT per group equal
        // the model exactly (integer-valued floats sum exactly).
        let plan = parse_query("SELECT grp, SUM(val), COUNT(*) FROM t GROUP BY grp")
            .unwrap()
            .to_exact_plan(&cat)
            .unwrap();
        let result = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
        let mut truth: HashMap<i64, (f64, f64)> = HashMap::new();
        for r in &model {
            let e = truth.entry(r.grp).or_insert((0.0, 0.0));
            e.0 += r.val;
            e.1 += 1.0;
        }
        assert_eq!(result.num_groups(), truth.len(), "case {case}");
        for g in &result.groups {
            let key = g.key[0].as_i64().unwrap();
            let (sum, count) = truth[&key];
            assert_eq!(g.aggregates[0].value, sum, "case {case}: SUM(grp={key})");
            assert_eq!(g.aggregates[1].value, count, "case {case}: COUNT(grp={key})");
        }
    }
}

/// One bias trial: build a synopsis, delete up to half the table on a
/// delete-independent predicate, and check the approximate answer against
/// the live exact answer at the query's ErrorSpec.
fn bias_trial(seed: u64) -> bool {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = 6_000usize;
    let groups = 8i64;
    let mut next_id = 0i64;
    let mut model = gen_rows(&mut rng, &mut next_id, rows, groups);
    // Low-variance values (cv ≈ 0.19): the sample sizes the planner picks
    // make the sampling error a small fraction of the 10% budget, so a trial
    // failure means *bias* — exactly what an uncorrected tombstone weight
    // introduces (up to 2× at 50% deletes).
    for r in &mut model {
        r.val = 500.0 + (r.val / 2.0).floor();
    }
    let cat = Catalog::new();
    cat.register(Table::from_batch("t", make_batch(&model), 4).unwrap());
    let cat = Arc::new(cat);
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    let eng = TasterEngine::new(cat.clone(), config);

    let sql = "SELECT grp, SUM(val) FROM t GROUP BY grp ERROR WITHIN 10% AT CONFIDENCE 95%";
    let _ = eng.execute_sql(sql).unwrap(); // materialize the synopsis

    // Delete a random 10–50% prefix (independent of grp and val).
    let frac = rng.random_range(10..51u32) as f64 / 100.0;
    let pivot = (rows as f64 * frac) as i64;
    let report = eng
        .delete_where("t", &[pred("id", BinaryOp::Lt, Value::Int(pivot))])
        .unwrap();
    assert_eq!(report.rows_affected, pivot as usize);

    let approx = eng.execute_sql(sql).unwrap();
    let exact_plan = parse_query(sql).unwrap().to_exact_plan(&cat).unwrap();
    let exact = execute(&exact_plan, &ExecutionContext::new(cat.clone())).unwrap();
    let (err, missed) = approx.result.error_vs(&exact);
    missed == 0 && err <= 0.10
}

/// Approximate answers stay inside the ErrorSpec at the stated confidence
/// after deleting up to 50% of rows — ≥100 seeded trials, judged with a
/// binomial tail allowance rather than a flaky per-seed hard bound.
#[test]
fn approximate_answers_hold_error_spec_after_heavy_deletes() {
    let report = stats_assert::run_seeded_trials(0xb1a5_07a5, 100, bias_trial);
    report.assert_confidence(
        0.95,
        "SUM per group within 10% after deleting 10–50% of rows",
    );
}

/// Deletes correlated with the aggregated column are the adversarial case
/// for in-place reweighting: the deleted fraction exceeds the staleness
/// bound, so the tuner must rebuild the synopsis from live rows before
/// answering — served estimates stay accurate instead of drifting.
#[test]
fn correlated_deletes_force_rebuild_not_drift() {
    for (case, seed) in stats_assert::seed_schedule(0xc0de_1e7e, 5)
        .into_iter()
        .enumerate()
    {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_id = 0i64;
        let model = gen_rows(&mut rng, &mut next_id, 8_000, 6);
        let cat = Catalog::new();
        cat.register(Table::from_batch("t", make_batch(&model), 4).unwrap());
        let cat = Arc::new(cat);
        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
        let eng = TasterEngine::new(cat.clone(), config);

        let sql = "SELECT grp, SUM(val) FROM t GROUP BY grp ERROR WITHIN 10% AT CONFIDENCE 95%";
        let _ = eng.execute_sql(sql).unwrap();

        // Delete the top ~40% of the value distribution: correlated with
        // SUM(val), and past the 20% staleness bound.
        eng.delete_where("t", &[pred("val", BinaryOp::GtEq, Value::Int(600))])
            .unwrap();

        let approx = eng.execute_sql(sql).unwrap();
        let exact_plan = parse_query(sql).unwrap().to_exact_plan(&cat).unwrap();
        let exact = execute(&exact_plan, &ExecutionContext::new(cat.clone())).unwrap();
        let (err, missed) = approx.result.error_vs(&exact);
        assert_eq!(missed, 0, "case {case}");
        // Without the rebuild the estimate would be ~2.7× the truth (the
        // deleted tail carried most of the mass); with it the answer is an
        // honest sample of the live rows.
        stats_assert::assert_bounded(err, 0.15, &format!("case {case} (seed {seed:#x})"));
    }
}

/// The README "Deletes, updates and compaction" quickstart, verbatim — keep
/// the two in sync.
#[test]
fn readme_mutation_quickstart() {
    let batch = BatchBuilder::new()
        .column("grp", (0..50_000i64).map(|i| i % 5).collect::<Vec<_>>())
        .column("v", (0..50_000).map(|i| (i % 97) as f64).collect::<Vec<_>>())
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("events", batch, 8).unwrap());
    let engine = Arc::new(TasterEngine::new(Arc::new(cat), TasterConfig::default()));

    // Tombstone 2 of 5 groups. The mask publishes atomically with the
    // snapshot: a concurrent scan sees all of the delete or none of it.
    let del = engine
        .delete_where(
            "events",
            &[Expr::binary(Expr::col("grp"), BinaryOp::GtEq, Expr::lit(3i64))],
        )
        .unwrap();
    assert_eq!(del.rows_affected, 20_000);

    // UPDATE = delete + re-append of the rewritten rows.
    let upd = engine
        .update_where(
            "events",
            &[("v".to_string(), Value::Float(1.0))],
            &[Expr::binary(Expr::col("grp"), BinaryOp::Eq, Expr::lit(0i64))],
        )
        .unwrap();
    assert_eq!(upd.rows_affected, 10_000);

    // The mutations are visible immediately: 30k live rows, but the 30k
    // tombstoned ones are still physically present...
    let events = engine.catalog_handle().table("events").unwrap();
    assert_eq!((events.live_rows(), events.num_rows()), (30_000, 60_000));

    // ...and approximate answers track the live rows (covering uniform
    // samples are tombstone-corrected in place at delete time).
    let q = "SELECT COUNT(*) FROM events ERROR WITHIN 10% AT CONFIDENCE 95%";
    let est = engine.execute_sql(q).unwrap().result.groups[0].aggregates[0].value;
    assert!((est - 30_000.0).abs() / 30_000.0 < 0.10);

    // Compaction drops the dead rows (every sealed partition is 60% dead,
    // past the default 30% threshold) without changing any answer.
    let compacted = engine.compact_now().unwrap();
    assert!(!compacted.is_empty());
    assert_eq!((events.live_rows(), events.num_rows()), (30_000, 30_000));
}
