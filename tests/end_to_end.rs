//! Cross-crate integration tests: the full Taster pipeline against the exact
//! engine, over the benchmark workload generators.

use taster_repro::baselines::{BaselineEngine, QuickrEngine};
use taster_repro::taster::{TasterConfig, TasterEngine};
use taster_repro::workloads::{random_sequence, tpch};

fn small_catalog() -> std::sync::Arc<taster_repro::storage::Catalog> {
    tpch::generate(tpch::TpchScale {
        lineitem_rows: 40_000,
        partitions: 4,
        seed: 123,
    })
}

#[test]
fn taster_results_match_exact_within_requested_error() {
    let catalog = small_catalog();
    let baseline = BaselineEngine::new(catalog.clone());
    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 1.0);
    let taster = TasterEngine::new(catalog, config);

    let queries = random_sequence(&tpch::workload(), 25, 7);
    let mut approx_queries = 0;
    for q in &queries {
        let approx = taster.execute_sql(&q.sql).expect("taster runs");
        let exact = baseline.execute_sql(&q.sql).expect("baseline runs");
        let (err, missed) = approx.result.error_vs(&exact.result);
        assert_eq!(missed, 0, "groups missed on {} ({})", q.template_id, q.sql);
        assert!(
            err < 0.30,
            "error {err:.3} too large on {} ({})",
            q.template_id,
            q.sql
        );
        if approx.approximate {
            approx_queries += 1;
        }
    }
    assert!(
        approx_queries >= queries.len() / 3,
        "Taster approximated only {approx_queries}/{} queries",
        queries.len()
    );
}

#[test]
fn taster_reuses_synopses_across_a_workload() {
    let catalog = small_catalog();
    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 1.0);
    let taster = TasterEngine::new(catalog, config);

    let queries = random_sequence(&tpch::workload(), 40, 11);
    let mut reuse_count = 0;
    let mut total_base_rows_late = 0usize;
    for (i, q) in queries.iter().enumerate() {
        let res = taster.execute_sql(&q.sql).expect("taster runs");
        if !res.reused_synopses.is_empty() {
            reuse_count += 1;
        }
        if i >= 30 {
            total_base_rows_late += res.result.metrics.base_rows_scanned;
        }
    }
    assert!(
        reuse_count >= 8,
        "expected substantial synopsis reuse, got {reuse_count}/40"
    );
    // Once the warehouse is warm, most queries should not rescan the fact
    // table (15k rows); allow dimension scans and occasional cold templates.
    assert!(
        total_base_rows_late < 10 * 40_000,
        "late queries still scan too much base data: {total_base_rows_late}"
    );
}

#[test]
fn taster_outperforms_quickr_on_repetitive_workloads() {
    let catalog = small_catalog();
    let queries = random_sequence(&tpch::workload(), 30, 13);

    let mut quickr = QuickrEngine::new(catalog.clone());
    let mut quickr_total = 0.0;
    for q in &queries {
        quickr_total += quickr.execute_sql(&q.sql).expect("quickr runs").simulated_secs;
    }

    let config = TasterConfig::with_budget_fraction(catalog.total_size_bytes(), 1.0);
    let taster = TasterEngine::new(catalog, config);
    let mut taster_total = 0.0;
    for q in &queries {
        taster_total += taster.execute_sql(&q.sql).expect("taster runs").simulated_secs;
    }

    assert!(
        taster_total < quickr_total,
        "Taster ({taster_total:.2}s) should beat Quickr ({quickr_total:.2}s) by reusing synopses"
    );
}

#[test]
fn storage_budget_is_respected_throughout_a_run() {
    let catalog = small_catalog();
    let budget = catalog.total_size_bytes() / 5;
    let config = TasterConfig {
        warehouse_quota_bytes: budget,
        buffer_quota_bytes: budget / 4,
        ..TasterConfig::default()
    };
    let taster = TasterEngine::new(catalog, config);
    for q in random_sequence(&tpch::workload(), 30, 19) {
        taster.execute_sql(&q.sql).expect("taster runs");
        let usage = taster.store().usage();
        assert!(
            usage.warehouse_bytes <= budget,
            "warehouse over quota: {} > {budget}",
            usage.warehouse_bytes
        );
    }
}
