//! Property tests for the online-ingestion path.
//!
//! * **Zone-map safety under appends** — after any sequence of random
//!   appends, a pruning scan must return exactly the rows a brute-force
//!   filter over the concatenated table returns: the incrementally widened
//!   zone maps may over-approximate (scan a partition needlessly) but must
//!   never prune a partition that contains a matching row.
//! * **Incremental-sketch parity** — a sketch updated batch-by-batch answers
//!   identically to a from-scratch build over the concatenated stream, and
//!   both stay within the count-min ε bound of ground truth.
//! * **Incremental-sample maintenance** — absorbing appended rows keeps the
//!   uniform sample's weight-sum estimator unbiased and keeps the distinct
//!   sampler's δ coverage over the *whole* stream, including groups that
//!   only ever appear in appended batches.
//!
//! proptest is unavailable in the offline build environment, so the
//! properties are checked over a seeded sweep of randomized cases instead of
//! proptest's shrinking search; each case prints its inputs on failure.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

mod common;
use common::stats_assert;

use std::collections::HashMap;
use std::sync::Arc;
use taster_repro::engine::physical::execute;
use taster_repro::engine::{BinaryOp, Expr, LogicalPlan};
use taster_repro::engine::ExecutionContext;
use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, Table, Value};
use taster_repro::synopses::distinct::{DistinctSampler, DistinctSamplerConfig};
use taster_repro::synopses::{SketchJoin, UniformSampler};

fn batch(rng: &mut SmallRng, rows: usize, key_span: i64) -> RecordBatch {
    let mut k = Vec::with_capacity(rows);
    let mut v = Vec::with_capacity(rows);
    for _ in 0..rows {
        k.push(rng.random_range(0..key_span.max(1)));
        v.push(rng.random_range(0..1_000) as f64);
    }
    BatchBuilder::new()
        .column("k", k)
        .column("v", v)
        .build()
        .unwrap()
}

fn col_expr(name: &str) -> Expr {
    Expr::Column(name.to_string())
}

fn lit(v: i64) -> Expr {
    Expr::Literal(Value::Int(v))
}

/// Post-append zone maps never prune a partition containing a matching row:
/// a filtered scan through the engine equals a brute-force filter over the
/// concatenated table, for randomized append schedules and predicates.
#[test]
fn pruning_scan_after_appends_equals_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0x16e5_7a91);
    for case in 0..10 {
        let key_span = rng.random_range(4..200i64);
        let initial = rng.random_range(500..4_000usize);
        let parts = rng.random_range(2..9usize);
        let table = Table::from_batch("t", batch(&mut rng, initial, key_span), parts).unwrap();
        // Force zone computation before some appends (exercises the
        // incremental widening path) but not all (exercises lazy recompute).
        let precompute_zones = case % 2 == 0;
        if precompute_zones {
            let _ = table.snapshot().zones();
        }
        let appends = rng.random_range(1..6usize);
        for _ in 0..appends {
            let n = rng.random_range(1..2_000usize);
            table.append(&batch(&mut rng, n, key_span)).unwrap();
        }

        let cat = Catalog::new();
        let all = table.to_batch().unwrap();
        cat.register_arc(Arc::new(table));
        let ctx = ExecutionContext::new(Arc::new(cat));

        for _ in 0..8 {
            let pivot = rng.random_range(0..key_span);
            let (op, keep): (BinaryOp, Box<dyn Fn(i64) -> bool>) =
                match rng.random_range(0..3u32) {
                    0 => (BinaryOp::Eq, Box::new(move |x| x == pivot)),
                    1 => (BinaryOp::Lt, Box::new(move |x| x < pivot)),
                    _ => (BinaryOp::GtEq, Box::new(move |x| x >= pivot)),
                };
            let filter = Expr::Binary {
                left: Box::new(col_expr("k")),
                op,
                right: Box::new(lit(pivot)),
            };
            let plan = LogicalPlan::Scan {
                table: "t".into(),
                filter: Some(filter),
                projection: None,
                access: None,
            };
            let result = execute(&plan, &ctx).unwrap();

            let kc = all.column_by_name("k").unwrap();
            let mask: Vec<bool> = (0..all.num_rows())
                .map(|i| keep(kc.value(i).as_i64().unwrap()))
                .collect();
            let expect = all.filter(&mask);
            assert_eq!(
                result.rows.num_rows(),
                expect.num_rows(),
                "case {case} (zones precomputed: {precompute_zones}): pruning dropped rows for {op:?} {pivot}"
            );
            // Same multiset of rows, not just the same count: compare the
            // sorted (k, v) pairs.
            let flat = |b: &RecordBatch| {
                let k = b.column_by_name("k").unwrap();
                let v = b.column_by_name("v").unwrap();
                let mut rows: Vec<(i64, u64)> = (0..b.num_rows())
                    .map(|i| {
                        (
                            k.value(i).as_i64().unwrap(),
                            v.value(i).as_f64().unwrap().to_bits(),
                        )
                    })
                    .collect();
                rows.sort_unstable();
                rows
            };
            assert_eq!(flat(&result.rows), flat(&expect), "case {case}");
        }
    }
}

/// An incrementally updated sketch-join answers exactly like a from-scratch
/// build on the concatenated stream, and within the ε bound of ground truth.
#[test]
fn incremental_sketch_matches_scratch_build_within_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_5ce7);
    for case in 0..8 {
        let key_span = rng.random_range(10..100i64);
        let chunks: Vec<RecordBatch> = (0..rng.random_range(2..7usize))
            .map(|_| {
                let rows = rng.random_range(500..5_000usize);
                batch(&mut rng, rows, key_span)
            })
            .collect();

        // Incremental: build on the first chunk, absorb the appended rest.
        let mut incremental = SketchJoin::build(
            &chunks[..1],
            vec!["k".into()],
            Some("v".into()),
            0.001,
            0.01,
        )
        .unwrap();
        for c in &chunks[1..] {
            incremental.add_batch(c).unwrap();
        }
        // From scratch over the concatenated stream.
        let scratch = SketchJoin::build(
            &chunks,
            vec!["k".into()],
            Some("v".into()),
            0.001,
            0.01,
        )
        .unwrap();

        // Ground truth per key.
        let mut truth: HashMap<i64, (f64, f64)> = HashMap::new();
        for c in &chunks {
            let k = c.column_by_name("k").unwrap();
            let v = c.column_by_name("v").unwrap();
            for i in 0..c.num_rows() {
                let e = truth.entry(k.value(i).as_i64().unwrap()).or_insert((0.0, 0.0));
                e.0 += 1.0;
                e.1 += v.value(i).as_f64().unwrap();
            }
        }

        let (count_bound, sum_bound) = incremental.error_bounds();
        assert_eq!(
            incremental.rows_summarized(),
            scratch.rows_summarized(),
            "case {case}"
        );
        for key in 0..key_span {
            let a = incremental.probe(&[Value::Int(key)]);
            let b = scratch.probe(&[Value::Int(key)]);
            assert_eq!(a, b, "case {case}: probe({key}) diverged");
            let (tc, ts) = truth.get(&key).copied().unwrap_or((0.0, 0.0));
            assert!(
                a.count >= tc && a.count <= tc + count_bound,
                "case {case}: count estimate {} for truth {tc} outside [truth, truth+{count_bound}]",
                a.count
            );
            assert!(
                a.sum >= ts && a.sum <= ts + sum_bound,
                "case {case}: sum estimate {} for truth {ts} outside [truth, truth+{sum_bound}]",
                a.sum
            );
        }
    }
}

/// Incremental uniform-sample maintenance keeps the weight-sum estimator
/// unbiased over the grown stream.
#[test]
fn incremental_uniform_sample_estimates_grown_source() {
    let mut rng = SmallRng::seed_from_u64(42);
    for case in 0..6 {
        let p = [0.05, 0.1, 0.25][case % 3];
        let mut sampler = UniformSampler::new(p, 1_000 + case as u64);
        let first = batch(&mut rng, 20_000, 50);
        let mut sample = sampler.sample_batch(&first);
        let mut total = 20_000usize;
        for _ in 0..4 {
            let n = rng.random_range(2_000..10_000usize);
            sampler.update(&mut sample, &batch(&mut rng, n, 50)).unwrap();
            total += n;
        }
        assert_eq!(sample.source_rows, total, "case {case}");
        let est = sample.estimated_source_rows();
        stats_assert::assert_error_within(est, total as f64, 0.1, &format!("case {case}"));
        assert!((sample.probability - p).abs() < 1e-12);
    }
}

/// Incremental distinct-sample maintenance preserves δ coverage over the
/// whole stream — including groups introduced only by appends — even when a
/// fresh sampler instance (the engine's refresh path) absorbs each delta.
#[test]
fn incremental_distinct_sample_covers_appended_groups() {
    let delta_rows = 4usize;
    for case in 0..6u64 {
        let cfg = DistinctSamplerConfig::new(vec!["k".into()], delta_rows, 1e-9);
        let mut rng = SmallRng::seed_from_u64(900 + case);

        // Initial build: groups 0..20.
        let mut sampler = DistinctSampler::new(cfg.clone(), case);
        let mut sample = sampler
            .sample_batch(&batch(&mut rng, 5_000, 20))
            .unwrap();

        // Three appends, each widening the key span: groups 20.. appear only
        // in the appended data. Each delta uses a *fresh* sampler, as the
        // refresh path does.
        for (i, span) in [40i64, 60, 80].iter().enumerate() {
            let delta = batch(&mut rng, 5_000, *span);
            DistinctSampler::new(cfg.clone(), case * 10 + i as u64)
                .update(&mut sample, &delta)
                .unwrap();
        }

        let mut seen: HashMap<i64, usize> = HashMap::new();
        let kc = sample.rows.column_by_name("k").unwrap();
        for i in 0..sample.len() {
            *seen.entry(kc.value(i).as_i64().unwrap()).or_insert(0) += 1;
        }
        // Every group of the final key span has ≥ δ rows (each span is wide
        // enough that every group almost surely occurs ≥ δ times across the
        // 20k-row stream; assert coverage only for groups that do).
        let mut truth: HashMap<i64, usize> = HashMap::new();
        // Re-generate the stream to count true occurrences.
        let mut rng2 = SmallRng::seed_from_u64(900 + case);
        for span in [20i64, 40, 60, 80] {
            let b = batch(&mut rng2, 5_000, span);
            let kc = b.column_by_name("k").unwrap();
            for i in 0..b.num_rows() {
                *truth.entry(kc.value(i).as_i64().unwrap()).or_insert(0) += 1;
            }
        }
        for (group, occurrences) in truth {
            let need = delta_rows.min(occurrences);
            let got = seen.get(&group).copied().unwrap_or(0);
            assert!(
                got >= need,
                "case {case}: group {group} has {got} of {need} required rows"
            );
        }
        assert_eq!(sample.source_rows, 20_000);
    }
}
