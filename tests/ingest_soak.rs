//! Concurrent ingest + query soak for the online-ingestion path.
//!
//! Two ingest threads grow two fact tables through `Table::append` while four
//! query threads hammer the same [`TasterEngine`]. The soak checks the three
//! ingestion contracts end to end:
//!
//! 1. **Accuracy** — every query's estimate respects its `ErrorSpec` against
//!    the exact answer over the table state it ran on;
//! 2. **Freshness** — no plan ever reads a synopsis staler than the
//!    configured `max_staleness` bound;
//! 3. **Determinism** — under the fixed seed schedule the whole run is
//!    reproducible: two independent concurrent soaks and a serial replay of
//!    the same schedule produce identical results, query for query.
//!
//! The deterministic soak is *phased*: each round runs the two ingest
//! threads concurrently (each owns one table, so per-table append order is
//! fixed), joins them, then runs the four query threads concurrently.
//! Per-template pinned seeds make query results independent of thread
//! interleaving (the PR 4 argument), and the refresh path is deterministic
//! per (synopsis, resume-point), so the phase structure pins down everything
//! else. A second, chaotic soak runs all six threads truly concurrently and
//! checks the invariants that survive arbitrary interleaving.

use std::sync::Arc;

use taster_repro::engine::physical::execute;
use taster_repro::engine::{parse_query, ExecutionContext};
use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

const ORDERS_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
const CLICKS_Q: &str =
    "SELECT c_cat, SUM(c_val) FROM clicks GROUP BY c_cat ERROR WITHIN 10% AT CONFIDENCE 95%";
const ORDERS_SEED: u64 = 0xdead_beef_cafe;
const CLICKS_SEED: u64 = 0xfeed_f00d_1234;

const BASE_ROWS: usize = 40_000;
/// Appended per round: 40% of the base, so one round pushes staleness to
/// 16k/56k ≈ 0.29, past the default `max_staleness` of 0.2 — every round
/// forces the refresh machinery to act before synopses may be matched again.
const GROWTH_ROWS: usize = 16_000;
const ROUNDS: usize = 3;
const QUERY_THREADS: usize = 4;

fn orders_rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
        .column("o_flag", (lo as i64..hi as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn clicks_rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("c_id", (lo as i64..hi as i64).collect::<Vec<_>>())
        .column("c_cat", (lo as i64..hi as i64).map(|i| i % 8).collect::<Vec<_>>())
        .column(
            "c_val",
            (lo..hi).map(|i| (i % 613) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, BASE_ROWS), 8).unwrap());
    cat.register(Table::from_batch("clicks", clicks_rows(0, BASE_ROWS), 8).unwrap());
    Arc::new(cat)
}

fn engine(cat: Arc<Catalog>) -> TasterEngine {
    // A fixed, schedule-wide tuner window: the adaptive window (and with it
    // the keep/evict selection) would otherwise depend on the *order* of
    // query-log records, which concurrent sessions legitimately permute —
    // the soak pins every source of nondeterminism except thread timing.
    let config = TasterConfig {
        initial_window: 64,
        adaptive_window: false,
        ..TasterConfig::with_budget_fraction(cat.total_size_bytes() * 2, 1.0)
    };
    TasterEngine::new(cat, config)
}

/// A query result flattened to comparable form: sorted `(group key, values)`.
type FlatResult = Vec<(String, Vec<f64>)>;

/// Execute one seeded query, asserting the freshness and accuracy contracts,
/// and return the comparable result. `quiesced` is true when no ingest runs
/// concurrently (table state is pinned, so the accuracy check is exact).
fn run_checked(engine: &TasterEngine, cat: &Catalog, sql: &str, seed: u64, quiesced: bool) -> FlatResult {
    // Captured *before* the query: tables only grow, so staleness measured
    // against this undercounts the plan-time staleness — a valid necessary
    // condition even while ingest runs.
    let rows_before: Vec<(String, usize)> = cat
        .table_names()
        .iter()
        .map(|n| (n.clone(), cat.table(n).unwrap().num_rows()))
        .collect();
    let res = engine
        .execute_sql_seeded(sql, seed)
        .expect("query must not fail during concurrent ingest");

    // Freshness: no reused synopsis may be staler than the configured bound.
    let bound = engine.config().max_staleness;
    {
        let metadata = engine.metadata();
        for id in &res.reused_synopses {
            let meta = metadata.get(*id).expect("reused synopsis is registered");
            for table in &meta.descriptor.base_tables {
                let rows = rows_before
                    .iter()
                    .find(|(n, _)| n == table)
                    .map(|(_, r)| *r)
                    .unwrap_or(0);
                let staleness = meta.staleness(rows);
                assert!(
                    staleness <= bound + 1e-9,
                    "plan read synopsis {id} at staleness {staleness:.3} > bound {bound}"
                );
            }
        }
    }

    // Accuracy: in quiesced phases the table is static, so the estimate must
    // meet its ErrorSpec (10%) with slack for the deterministic seeds used.
    if quiesced {
        let exact_plan = parse_query(sql).unwrap();
        let exact_plan = exact_plan
            .to_exact_plan(&engine_catalog(engine))
            .expect("exact plan");
        let exact = execute(&exact_plan, &ExecutionContext::new(engine_catalog(engine))).unwrap();
        let (err, missed) = res.result.error_vs(&exact);
        assert_eq!(missed, 0, "groups missed for {sql}");
        assert!(err < 0.2, "estimate off by {err:.3} for {sql}");
    }

    let mut flat: FlatResult = res
        .result
        .groups
        .iter()
        .map(|g| {
            (
                format!("{:?}", g.key),
                g.aggregates.iter().map(|a| a.value).collect(),
            )
        })
        .collect();
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    flat
}

fn engine_catalog(engine: &TasterEngine) -> Arc<Catalog> {
    // The engine does not expose its catalog; the soak passes it alongside.
    // (Helper exists to keep call sites readable.)
    engine.catalog_handle()
}

/// Per-round ingest deltas, fixed up front so every run appends identical
/// content: each ingest thread owns one table and splits its delta into four
/// chunks to exercise the extend-then-seal path repeatedly.
fn ingest_round(cat: &Catalog, table: &str, round: usize) {
    let lo = BASE_ROWS + round * GROWTH_ROWS;
    for chunk in 0..4 {
        let a = lo + chunk * (GROWTH_ROWS / 4);
        let b = lo + (chunk + 1) * (GROWTH_ROWS / 4);
        let batch = match table {
            "orders" => orders_rows(a, b),
            _ => clicks_rows(a, b),
        };
        cat.table(table).unwrap().append(&batch).unwrap();
    }
}

/// One full phased soak: returns the per-(round, template) results (all query
/// threads must agree within the run for it to get here).
fn phased_soak() -> Vec<FlatResult> {
    let cat = catalog();
    let eng = engine(cat.clone());
    let mut reference: Vec<FlatResult> = Vec::new();

    // Serial warm-up, part of the fixed schedule: the first planning of each
    // template allocates its synopsis ids, and the sampler seed mixes the
    // synopsis id — letting two templates race their first registration
    // would permute ids (and therefore samples) run-to-run.
    reference.push(run_checked(&eng, &cat, ORDERS_Q, ORDERS_SEED, true));
    reference.push(run_checked(&eng, &cat, CLICKS_Q, CLICKS_SEED, true));

    for round in 0..ROUNDS {
        // Ingest phase: 2 writer threads, one table each, concurrently.
        if round > 0 {
            std::thread::scope(|scope| {
                for table in ["orders", "clicks"] {
                    let cat = &cat;
                    scope.spawn(move || ingest_round(cat, table, round - 1));
                }
            });
            assert_eq!(
                cat.table("orders").unwrap().num_rows(),
                BASE_ROWS + round * GROWTH_ROWS
            );
        }

        // Query phase: 4 session threads over the (now static) tables.
        let results: Vec<Vec<FlatResult>> = std::thread::scope(|scope| {
            let eng = &eng;
            let cat = &cat;
            let handles: Vec<_> = (0..QUERY_THREADS)
                .map(|_| {
                    scope.spawn(move || {
                        vec![
                            run_checked(eng, cat, ORDERS_Q, ORDERS_SEED, true),
                            run_checked(eng, cat, CLICKS_Q, CLICKS_SEED, true),
                        ]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All four threads must agree query-for-query within the round.
        for other in &results[1..] {
            assert_eq!(
                &results[0], other,
                "round {round}: concurrent sessions diverged"
            );
        }
        reference.extend(results.into_iter().next().unwrap());
    }

    // Post-soak store invariants (the PR 4 checks, under ingestion).
    let usage = eng.store().usage();
    assert!(usage.buffer_bytes <= usage.buffer_quota, "{usage:?}");
    assert!(usage.warehouse_bytes <= usage.warehouse_quota, "{usage:?}");
    let ids = eng.store().materialized_ids();
    let accounted: usize = ids.iter().filter_map(|&id| eng.store().size_of(id)).sum();
    assert_eq!(accounted, usage.buffer_bytes + usage.warehouse_bytes);
    // The growth actually exercised the refresh machinery.
    assert!(
        eng.synopsis_refreshes() > 0,
        "rounds of 40% growth must trigger staleness refreshes"
    );
    reference
}

/// Serial replay of the *full* schedule (every thread's queries, one thread,
/// same seeds, same phases). The replay must issue the same number of
/// queries as the concurrent soak: the tuner's keep/evict/refresh decisions
/// evolve with the query log, so a thinner schedule would legitimately
/// diverge in later rounds.
fn serial_soak() -> Vec<FlatResult> {
    let cat = catalog();
    let eng = engine(cat.clone());
    let mut reference = Vec::new();
    reference.push(run_checked(&eng, &cat, ORDERS_Q, ORDERS_SEED, true));
    reference.push(run_checked(&eng, &cat, CLICKS_Q, CLICKS_SEED, true));
    for round in 0..ROUNDS {
        if round > 0 {
            ingest_round(&cat, "orders", round - 1);
            ingest_round(&cat, "clicks", round - 1);
        }
        let per_thread: Vec<Vec<FlatResult>> = (0..QUERY_THREADS)
            .map(|_| {
                vec![
                    run_checked(&eng, &cat, ORDERS_Q, ORDERS_SEED, true),
                    run_checked(&eng, &cat, CLICKS_Q, CLICKS_SEED, true),
                ]
            })
            .collect();
        for other in &per_thread[1..] {
            assert_eq!(&per_thread[0], other, "round {round}: serial replay drifted");
        }
        reference.extend(per_thread.into_iter().next().unwrap());
    }
    reference
}

/// The acceptance soak: 2 ingest threads + 4 query threads on one engine;
/// estimates respect their ErrorSpec, no plan reads past the staleness
/// bound, and the run is deterministic under the fixed seed schedule.
#[test]
fn phased_ingest_query_soak_is_deterministic_and_fresh() {
    let serial = serial_soak();
    let concurrent_a = phased_soak();
    let concurrent_b = phased_soak();
    assert_eq!(
        concurrent_a, concurrent_b,
        "two concurrent soaks must be identical under the fixed seed schedule"
    );
    assert_eq!(
        concurrent_a, serial,
        "concurrent soak must match the serial replay query-for-query"
    );
    assert_eq!(serial.len(), (ROUNDS + 1) * 2);
}

/// Chaos variant: ingest and query threads genuinely interleave. Results are
/// not comparable run-to-run (which rows a plan sees depends on timing), but
/// the safety invariants must hold throughout: queries never fail, no plan
/// reads a synopsis staler than the bound, appends are never lost, and the
/// store accounting stays consistent.
#[test]
fn chaotic_ingest_query_soak_holds_invariants() {
    let cat = catalog();
    let eng = engine(cat.clone());

    std::thread::scope(|scope| {
        let eng = &eng;
        let cat = &cat;
        for table in ["orders", "clicks"] {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    ingest_round(cat, table, round);
                }
            });
        }
        for t in 0..QUERY_THREADS {
            scope.spawn(move || {
                for i in 0..6 {
                    let (sql, seed) = if (t + i) % 2 == 0 {
                        (ORDERS_Q, ORDERS_SEED)
                    } else {
                        (CLICKS_Q, CLICKS_SEED)
                    };
                    // Not quiesced: the exact answer is a moving target, so
                    // only the freshness/robustness half is asserted.
                    let _ = run_checked(eng, cat, sql, seed, false);
                }
            });
        }
    });

    // No append was lost: both tables hold base + all rounds.
    for table in ["orders", "clicks"] {
        assert_eq!(
            cat.table(table).unwrap().num_rows(),
            BASE_ROWS + ROUNDS * GROWTH_ROWS,
            "{table} lost appends"
        );
        // Stats catch up to the final state and agree with a full recompute.
        let stats = cat.table(table).unwrap().stats();
        assert_eq!(stats.row_count, BASE_ROWS + ROUNDS * GROWTH_ROWS);
    }
    let usage = eng.store().usage();
    assert!(usage.buffer_bytes <= usage.buffer_quota, "{usage:?}");
    assert!(usage.warehouse_bytes <= usage.warehouse_quota, "{usage:?}");
    let ids = eng.store().materialized_ids();
    let accounted: usize = ids.iter().filter_map(|&id| eng.store().size_of(id)).sum();
    assert_eq!(accounted, usage.buffer_bytes + usage.warehouse_bytes);
}
