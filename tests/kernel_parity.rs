//! Parity property test: the vectorized kernels (`Expr::evaluate`,
//! `Expr::evaluate_predicate`) must agree with the retained row-at-a-time
//! `Expr::evaluate_row` path on randomized batches and randomized expression
//! trees — the whole-batch analogue of the unit test
//! `row_evaluation_matches_batch_evaluation`.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use taster_repro::engine::physical::execute;
use taster_repro::engine::{parse_query, BinaryOp, ExecutionContext, Expr};
use taster_repro::storage::batch::BatchBuilder;
use taster_repro::storage::{Catalog, RecordBatch, Table, Value};

fn random_batch(rng: &mut SmallRng, rows: usize) -> RecordBatch {
    let ints: Vec<i64> = (0..rows).map(|_| rng.random_range(-20..20i64)).collect();
    let floats: Vec<f64> = (0..rows)
        .map(|_| (rng.random_range(-200..200i64) as f64) / 8.0)
        .collect();
    let strs: Vec<String> = (0..rows)
        .map(|_| ["apple", "pear", "quince", "fig", ""][rng.random_range(0..5usize)].to_string())
        .collect();
    let bools: Vec<bool> = (0..rows).map(|_| rng.random_range(0..2i64) == 1).collect();
    BatchBuilder::new()
        .column("i", ints)
        .column("f", floats)
        .column("s", strs)
        .column("b", bools)
        .build()
        .unwrap()
}

fn random_leaf(rng: &mut SmallRng) -> Expr {
    match rng.random_range(0..8usize) {
        0 => Expr::col("i"),
        1 => Expr::col("f"),
        2 => Expr::col("s"),
        3 => Expr::col("b"),
        4 => Expr::lit(rng.random_range(-20..20i64)),
        5 => Expr::lit((rng.random_range(-200..200i64) as f64) / 8.0),
        6 => Expr::lit(["apple", "pear", "zebra"][rng.random_range(0..3usize)]),
        _ => Expr::lit(rng.random_range(0..2i64) == 1),
    }
}

const COMPARISONS: [BinaryOp; 6] = [
    BinaryOp::Eq,
    BinaryOp::NotEq,
    BinaryOp::Lt,
    BinaryOp::LtEq,
    BinaryOp::Gt,
    BinaryOp::GtEq,
];

/// Random comparison/logic trees up to depth 2 (comparisons of leaves,
/// AND/OR of comparisons). Arithmetic is excluded here because its row path
/// fails the whole expression on e.g. division by zero while the kernel path
/// must do the same — that's covered separately below.
fn random_predicate(rng: &mut SmallRng, depth: usize) -> Expr {
    if depth > 0 && rng.random_range(0..2usize) == 0 {
        let op = if rng.random_range(0..2usize) == 0 {
            BinaryOp::And
        } else {
            BinaryOp::Or
        };
        Expr::binary(
            random_predicate(rng, depth - 1),
            op,
            random_predicate(rng, depth - 1),
        )
    } else {
        let op = COMPARISONS[rng.random_range(0..COMPARISONS.len())];
        Expr::binary(random_leaf(rng), op, random_leaf(rng))
    }
}

#[test]
fn vectorized_predicates_match_row_evaluation_on_random_batches() {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut nontrivial = 0usize;
    for case in 0..300 {
        let rows = rng.random_range(1..200usize);
        let batch = random_batch(&mut rng, rows);
        let pred = random_predicate(&mut rng, 2);
        let mask = pred
            .evaluate_predicate(&batch)
            .unwrap_or_else(|e| panic!("case {case} ({pred}): {e}"));
        assert_eq!(mask.len(), rows, "case {case} ({pred})");
        let mut selected = 0usize;
        for row in 0..rows {
            let want = pred
                .evaluate_row(&batch, row)
                .unwrap()
                .as_bool()
                .unwrap_or(false);
            assert_eq!(
                mask.get(row),
                want,
                "case {case} row {row}: predicate {pred} disagrees"
            );
            selected += usize::from(want);
        }
        if selected > 0 && selected < rows {
            nontrivial += 1;
        }
    }
    // Guard against the generator degenerating into all-true/all-false masks.
    assert!(nontrivial > 30, "only {nontrivial} non-trivial cases");
}

#[test]
fn vectorized_arithmetic_matches_row_evaluation_on_random_batches() {
    let mut rng = SmallRng::seed_from_u64(0xa51);
    for case in 0..300 {
        let rows = rng.random_range(1..100usize);
        let batch = random_batch(&mut rng, rows);
        // Numeric leaves only; division is exercised but the divisor literal
        // is nonzero (zero divisors fail the whole batch on both paths).
        let ops = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div];
        let op = ops[rng.random_range(0..ops.len())];
        let left = match rng.random_range(0..3usize) {
            0 => Expr::col("i"),
            1 => Expr::col("f"),
            _ => Expr::lit(rng.random_range(-10..10i64)),
        };
        let right = if op == BinaryOp::Div {
            Expr::lit(rng.random_range(1..10i64))
        } else {
            match rng.random_range(0..3usize) {
                0 => Expr::col("f"),
                1 => Expr::col("b"),
                _ => Expr::lit((rng.random_range(-40..40i64) as f64) / 4.0),
            }
        };
        let expr = Expr::binary(left, op, right);
        let col = expr
            .evaluate(&batch)
            .unwrap_or_else(|e| panic!("case {case} ({expr}): {e}"));
        assert_eq!(col.len(), rows);
        for row in 0..rows {
            let want = expr.evaluate_row(&batch, row).unwrap();
            let got = col.value(row);
            match (&got, &want) {
                (Value::Float(a), Value::Float(b)) => {
                    assert!(
                        (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                        "case {case} row {row}: {expr} = {a} vs {b}"
                    );
                }
                _ => assert_eq!(got, want, "case {case} row {row}: {expr}"),
            }
        }
    }
}

#[test]
fn division_by_zero_fails_both_paths_identically() {
    let mut rng = SmallRng::seed_from_u64(7);
    let batch = random_batch(&mut rng, 16);
    let expr = Expr::binary(Expr::col("i"), BinaryOp::Div, Expr::lit(0i64));
    assert!(expr.evaluate(&batch).is_err());
    assert!(expr.evaluate_row(&batch, 0).is_err());
}

/// Dictionary encoding is a storage choice, never a correctness choice: the
/// encoded batch must produce bit-identical masks for every random predicate
/// the raw batch sees — including the code-specialized literal and
/// column-column comparison kernels.
#[test]
fn dict_encoded_batches_match_raw_on_random_predicates() {
    let mut rng = SmallRng::seed_from_u64(0xd1c7);
    for case in 0..300 {
        let rows = rng.random_range(1..200usize);
        let raw = random_batch(&mut rng, rows);
        let enc = raw.dict_encode_strings();
        assert!(enc.has_dict_columns(), "case {case}: encoding was a no-op");
        let pred = random_predicate(&mut rng, 2);
        let want = pred
            .evaluate_predicate(&raw)
            .unwrap_or_else(|e| panic!("case {case} ({pred}) raw: {e}"));
        let got = pred
            .evaluate_predicate(&enc)
            .unwrap_or_else(|e| panic!("case {case} ({pred}) dict: {e}"));
        for row in 0..rows {
            assert_eq!(
                got.get(row),
                want.get(row),
                "case {case} row {row}: {pred} diverges on the encoded batch"
            );
        }
    }
}

/// End-to-end parity on a *mixed* table — dict-encoded sealed partitions plus
/// a raw unsealed tail left by an append — against a table holding the same
/// rows as one big raw partition. Scans with string predicates and string
/// group-bys must return bit-identical rows in both layouts, single- and
/// multi-threaded.
#[test]
fn mixed_sealed_unsealed_tables_answer_identically_to_raw() {
    let mut rng = SmallRng::seed_from_u64(0xfeed);
    let base = random_batch(&mut rng, 4_000);
    let tail = random_batch(&mut rng, 300);

    // Encoded layout: 4 sealed (encoded) partitions, then an appended tail
    // that stays raw because it is below the seal bound.
    let mixed = Table::from_batch("t", base.clone(), 4).unwrap();
    mixed.append(&tail).unwrap();
    let (dicts, plain) = mixed.snapshot().encoding_counts();
    assert!(dicts >= 4 && plain >= 1, "want a mixed layout, got ({dicts}, {plain})");

    // Raw layout: every row in one partition kept below its seal bound.
    let mut all = base;
    all.append(&tail).unwrap();
    let n = all.num_rows();
    let raw = Table::from_partitions_with_seal("t", vec![all], n + 1).unwrap();
    assert_eq!(raw.snapshot().encoding_counts(), (0, 1));

    let cat_mixed = Arc::new(Catalog::new());
    cat_mixed.register(mixed);
    let cat_raw = Arc::new(Catalog::new());
    cat_raw.register(raw);

    let queries = [
        "SELECT i, s FROM t WHERE s = 'fig'",
        "SELECT i, s FROM t WHERE s > 'apple' AND s <= 'pear'",
        "SELECT i, f FROM t WHERE s != '' AND i > 0",
        "SELECT s, COUNT(*) FROM t GROUP BY s",
        "SELECT s, SUM(i) FROM t WHERE s < 'quince' GROUP BY s",
    ];
    for threads in ["1", "4"] {
        std::env::set_var("TASTER_THREADS", threads);
        for q in queries {
            let run = |cat: &Arc<Catalog>| {
                let plan = parse_query(q).unwrap().to_exact_plan(cat).unwrap();
                let res = execute(&plan, &ExecutionContext::new(cat.clone())).unwrap();
                (0..res.rows.num_rows())
                    .map(|i| format!("{:?}", res.rows.row(i)))
                    .collect::<Vec<String>>()
            };
            let got = run(&cat_mixed);
            assert_eq!(
                got,
                run(&cat_raw),
                "{q:?} diverges between encoded and raw layouts (threads {threads})"
            );
            assert!(!got.is_empty(), "{q:?} returned nothing — weak test");
        }
    }
    std::env::remove_var("TASTER_THREADS");
}
