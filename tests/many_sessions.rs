//! Many-sessions soak: a fleet of sessions hammers one service; everything
//! must be served (with bounded retry on typed backpressure), shared scans
//! must actually share, and the engine must come out of the storm clean.
//!
//! This is the CI soak leg — it runs under both `TASTER_THREADS=1` and `=4`
//! in the matrix, so the shared morsel pass is exercised in its serial and
//! parallel forms under real session concurrency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taster_repro::server::{Response, ServiceConfig, SessionService, TenantBudgets};
use taster_repro::storage::{batch::BatchBuilder, Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

const ROWS: usize = 50_000;
const SESSIONS: usize = 64;
const QUERIES_PER_SESSION: usize = 4;

const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
const EXACT_Q: &str = "SELECT o_id, o_price FROM orders WHERE o_price > 500";

fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..ROWS as i64).collect::<Vec<_>>())
        .column("o_cust", (0..ROWS as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..ROWS as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    Arc::new(cat)
}

#[test]
fn many_sessions_soak() {
    let cat = catalog();
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    let engine = Arc::new(TasterEngine::new(cat, config));
    let service = SessionService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: 8,
            max_queue: 16,
            default_budgets: TenantBudgets::default(),
        },
    );
    let limit = 8 + 16;

    let served = AtomicU64::new(0);
    let backoffs = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for s in 0..SESSIONS {
            let session = service.session(if s % 2 == 0 { "alpha" } else { "beta" });
            let served = &served;
            let backoffs = &backoffs;
            scope.spawn(move || {
                for q in 0..QUERIES_PER_SESSION {
                    let sql = if (s + q) % 2 == 0 { APPROX_Q } else { EXACT_Q };
                    // Typed backpressure contract: on Overloaded, back off
                    // and retry; everything else must be a reply.
                    loop {
                        match session.query(sql) {
                            Response::Reply(reply) => {
                                assert!(
                                    reply.rows > 0 || !reply.groups.is_empty(),
                                    "a served query has output"
                                );
                                served.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Response::Reject { kind, message } => {
                                assert_eq!(
                                    kind.to_string(),
                                    "overloaded",
                                    "only admission may reject the soak workload: {message}"
                                );
                                backoffs.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(2));
                            }
                        }
                    }
                }
            });
        }
    });

    assert_eq!(
        served.load(Ordering::Relaxed),
        (SESSIONS * QUERIES_PER_SESSION) as u64,
        "every query eventually served"
    );

    let stats = service.admission_stats();
    assert!(stats.peak_inflight <= limit, "bounded depth: {stats:?}");
    assert_eq!(stats.inflight, 0, "all permits returned: {stats:?}");

    // Scan sharing must have happened: with 8 workers racing identical
    // exact scans, attached passes are structural, not lucky.
    let scans = engine.shared_scan_stats();
    assert!(
        scans.attached >= 1,
        "the soak must share scan passes: {scans:?}"
    );

    // Build dedup: one logical template → the synopsis was built once or
    // rebuilt after eviction, never once per racing session.
    assert!(
        engine.synopsis_builds() <= 3,
        "{SESSIONS} sessions must not duplicate the template's build: {} builds",
        engine.synopsis_builds()
    );

    // Post-storm hygiene: quotas respected, nothing leaked.
    let usage = engine.store().usage();
    assert!(usage.buffer_bytes <= usage.buffer_quota, "{usage:?}");
    assert!(usage.warehouse_bytes <= usage.warehouse_quota, "{usage:?}");
    assert_eq!(engine.store().outstanding_leases(), 0);
    assert_eq!(engine.store().graveyard_len(), 0);

    service.shutdown();
}
