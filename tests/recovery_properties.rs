//! Durability and crash-recovery properties of the persistent engine.
//!
//! Everything here runs on [`MemVfs`] so the tests can snapshot "the disk",
//! truncate the WAL at arbitrary byte boundaries, and hand the mutilated
//! state to [`TasterEngine::recover`] — the deterministic complement of the
//! SIGKILL soak in `tests/crash_recovery.rs`. The properties:
//!
//! 1. **Warm restart** — a recovered engine answers from its recovered
//!    synopses (no base-table scan, no rebuild), and a seeded probe query
//!    returns byte-identical estimates before and after the crash;
//! 2. **Prefix validity** — truncating the WAL at *every* byte boundary
//!    (inter- and intra-record) recovers exactly the state at the last commit
//!    boundary at or before the cut, never a torn hybrid;
//! 3. **Idempotence** — recovering twice from the same directory yields the
//!    same state, even though recovery itself rewrites (compacts) the log;
//! 4. **Fault schedules** — under seeded injected faults (torn writes, short
//!    reads, failed fsyncs, crash-point panics) the write path either
//!    succeeds or fails cleanly, and a clean recovery afterwards always
//!    lands on a commit boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use taster_repro::storage::batch::{BatchBuilder, RecordBatch};
use taster_repro::storage::{Catalog, FaultPlan, FaultVfs, MemVfs, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

const DIR: &str = "/taster-db";
const Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";
const PROBE_SEED: u64 = 0x5eed_cafe;

fn dir() -> &'static Path {
    Path::new(DIR)
}

fn wal_path() -> std::path::PathBuf {
    dir().join("wal.log")
}

fn pages_path() -> std::path::PathBuf {
    dir().join("pages.dat")
}

fn orders_rows(lo: usize, hi: usize) -> RecordBatch {
    BatchBuilder::new()
        .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
        .column("o_flag", (lo as i64..hi as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (lo..hi).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn orders_catalog(rows: usize) -> Arc<Catalog> {
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", orders_rows(0, rows), 8).unwrap());
    Arc::new(cat)
}

fn config(cat: &Catalog) -> TasterConfig {
    TasterConfig {
        initial_window: 64,
        adaptive_window: false,
        ..TasterConfig::with_budget_fraction(cat.total_size_bytes() * 2, 1.0)
    }
}

/// A query result flattened to comparable form: sorted `(group key, values)`.
type FlatResult = Vec<(String, Vec<f64>)>;

fn flat(res: &taster_repro::taster::TasterResult) -> FlatResult {
    let mut out: FlatResult = res
        .result
        .groups
        .iter()
        .map(|g| {
            (
                format!("{:?}", g.key),
                g.aggregates.iter().map(|a| a.value).collect(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Property 1: crash after normal operation, recover, and the engine is
/// *warm* — the recovered synopsis answers without touching the base table,
/// a seeded probe reproduces its pre-crash estimate exactly, and subsequent
/// growth is absorbed by the ordinary refresh machinery (catch-up), not a
/// rebuild.
#[test]
fn recovered_engine_answers_warm_and_identical() {
    const ROWS: usize = 50_000;
    let vfs = MemVfs::new();
    let cat = orders_catalog(ROWS);
    let cfg = config(&cat);

    let (probe_before, rows_before, queries_before) = {
        let eng = TasterEngine::open_durable_with_vfs(cat.clone(), cfg, &vfs, dir()).unwrap();
        let first = eng.execute_sql(Q).unwrap();
        assert!(!first.created_synopses.is_empty(), "{}", first.plan_description);
        let second = eng.execute_sql(Q).unwrap();
        assert!(!second.reused_synopses.is_empty(), "{}", second.plan_description);
        let d = eng.durability().expect("persistent mode");
        assert!(
            !d.persisted_ids().is_empty(),
            "warehouse residents must be persisted after the reuse query"
        );
        let probe = eng.execute_sql_seeded(Q, PROBE_SEED).unwrap();
        (flat(&probe), cat.total_rows(), eng.queries_executed())
        // Engine and catalog drop here: the process "crashes" with whatever
        // reached the MemVfs.
    };
    assert_eq!(queries_before, 2, "seeded probes do not advance the schedule");
    drop(cat);

    let (eng, report) = TasterEngine::recover_with_vfs(cfg, &vfs, dir()).unwrap();
    assert_eq!(report.tables, 1);
    assert_eq!(report.rows, rows_before);
    assert!(report.synopses_recovered >= 1, "{report:?}");
    assert_eq!(report.synopses_dropped, 0, "{report:?}");
    assert!(report.wal_records_applied > 0, "{report:?}");
    assert!(report.pages_read > 0, "payload blobs come from the pager");
    assert!(!report.wal_tail_torn, "clean shutdown has no torn tail");
    assert_eq!(eng.queries_executed(), queries_before, "counter restored");

    // Warm restart: the probe reuses the recovered synopsis — zero base rows
    // scanned, nothing rebuilt — and the estimate is byte-identical.
    let probe_after = eng.execute_sql_seeded(Q, PROBE_SEED).unwrap();
    assert!(
        !probe_after.reused_synopses.is_empty(),
        "recovered synopsis must be matched: {}",
        probe_after.plan_description
    );
    assert!(probe_after.created_synopses.is_empty(), "no rebuild");
    assert_eq!(
        probe_after.result.metrics.base_rows_scanned, 0,
        "warm answer must not scan the base table"
    );
    assert_eq!(probe_before, flat(&probe_after), "recovered payload differs");
    assert!(
        probe_after.result.metrics.cold_pages_read > 0,
        "warehouse reuse in persistent mode is charged in measured pages"
    );

    // Growth after recovery flows through the re-armed WAL and is absorbed
    // by refresh (catch-up), not by rebuilding the synopsis.
    let refreshes_before = eng.synopsis_refreshes();
    let grown = rows_before + rows_before / 2;
    eng.catalog_handle()
        .table("orders")
        .unwrap()
        .append(&orders_rows(rows_before, grown))
        .unwrap();
    let after_growth = eng.execute_sql(Q).unwrap();
    assert!(
        eng.synopsis_refreshes() > refreshes_before,
        "50% growth must trigger a staleness refresh"
    );
    assert!(
        !after_growth.reused_synopses.is_empty(),
        "refresh keeps the synopsis reusable: {}",
        after_growth.plan_description
    );
    drop(eng);

    // Crash again: the post-recovery appends were logged write-ahead, so a
    // second recovery sees the grown table, and the caught-up synopsis comes
    // back with its post-refresh coverage — not the stale pre-growth one.
    // (Whether the next query *reuses* it is the tuner's call — the
    // usefulness window is not durable state — so only durability is
    // asserted here.)
    let (eng, report) = TasterEngine::recover_with_vfs(cfg, &vfs, dir()).unwrap();
    assert_eq!(report.rows, grown, "appends after recovery must survive");
    assert!(report.synopses_recovered >= 1, "{report:?}");
    {
        let md = eng.metadata();
        let caught_up = eng
            .store()
            .materialized_ids()
            .iter()
            .any(|id| md.get(*id).and_then(|m| m.rows_at_build) == Some(grown));
        assert!(caught_up, "recovered synopsis must carry its refreshed coverage");
    }
    let again = eng.execute_sql_seeded(Q, PROBE_SEED).unwrap();
    assert_eq!(again.result.num_groups(), 5, "recovered engine must answer");
}

/// Property 2: for *every* byte-length prefix of the WAL, recovery succeeds
/// and lands exactly on the last commit boundary at or before the cut.
///
/// The writer performs one commit per driver action (the initial checkpoint
/// aside), so the row counts recorded after each action enumerate every
/// rows-changing boundary; a cut between two of them must recover the
/// earlier one — committed appends are never lost, torn ones never applied.
#[test]
fn every_wal_prefix_recovers_the_last_commit_boundary() {
    const BASE: usize = 64;
    const APPEND: usize = 16;
    const APPENDS: usize = 6;

    let vfs = MemVfs::new();
    let cat = orders_catalog(BASE);
    let cfg = config(&cat);

    // (wal byte length, orders rows) after each single-commit action.
    let mut boundaries: Vec<(usize, usize)> = Vec::new();
    {
        let eng = TasterEngine::open_durable_with_vfs(cat.clone(), cfg, &vfs, dir()).unwrap();
        boundaries.push((vfs.contents(&wal_path()).len(), BASE));
        for i in 0..APPENDS {
            let lo = BASE + i * APPEND;
            cat.table("orders")
                .unwrap()
                .append(&orders_rows(lo, lo + APPEND))
                .unwrap();
            boundaries.push((vfs.contents(&wal_path()).len(), lo + APPEND));
        }
        drop(eng);
    }
    let pages = vfs.contents(&pages_path());
    let wal = vfs.contents(&wal_path());
    assert_eq!(boundaries.last().unwrap().0, wal.len());

    for cut in 0..=wal.len() {
        let disk = MemVfs::new();
        disk.set_contents(&pages_path(), pages.clone());
        disk.set_contents(&wal_path(), wal[..cut].to_vec());

        let (eng, report) = TasterEngine::recover_with_vfs(cfg, &disk, dir())
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let rows = eng
            .catalog_handle()
            .table("orders")
            .map(|t| t.num_rows())
            .unwrap_or(0);

        match boundaries.iter().rev().find(|(len, _)| *len <= cut) {
            // Exact prefix semantics: the state at the last boundary ≤ cut.
            Some((_, expected)) => assert_eq!(
                rows, *expected,
                "cut {cut}: recovered {rows} rows, expected {expected} ({report:?})"
            ),
            // Cuts inside the initial open (checkpoint + sync commits share
            // one driver action): either nothing or the checkpoint survived.
            None => assert!(
                rows == 0 || rows == BASE,
                "cut {cut}: recovered {rows} rows before the first boundary"
            ),
        }
        // A mid-frame cut is a torn tail; a boundary cut is not.
        if boundaries.iter().any(|(len, _)| *len == cut) {
            assert!(!report.wal_tail_torn, "cut {cut} is a commit boundary");
        }
    }
}

/// Property 3: recovery is idempotent. Recovering rewrites the log (it
/// compacts the replayed state into a fresh checkpoint), and recovering
/// again from that rewritten state must reproduce the same engine.
#[test]
fn recovery_is_idempotent_across_its_own_compaction() {
    const ROWS: usize = 30_000;
    let vfs = MemVfs::new();
    let cat = orders_catalog(ROWS);
    let cfg = config(&cat);
    {
        let eng = TasterEngine::open_durable_with_vfs(cat.clone(), cfg, &vfs, dir()).unwrap();
        let _ = eng.execute_sql(Q).unwrap();
        let _ = eng.execute_sql(Q).unwrap();
        cat.table("orders")
            .unwrap()
            .append(&orders_rows(ROWS, ROWS + 1_000))
            .unwrap();
    }
    drop(cat);

    let (first, report_a) = TasterEngine::recover_with_vfs(cfg, &vfs, dir()).unwrap();
    let rows_a = first.catalog_handle().table("orders").unwrap().num_rows();
    let mut ids_a = first.durability().unwrap().persisted_ids();
    ids_a.sort_unstable();
    let probe_a = flat(&first.execute_sql_seeded(Q, PROBE_SEED).unwrap());
    drop(first);

    // The probe query above may itself have persisted new state; recover from
    // whatever is on disk now — the *semantic* state must be unchanged.
    let (second, report_b) = TasterEngine::recover_with_vfs(cfg, &vfs, dir()).unwrap();
    let rows_b = second.catalog_handle().table("orders").unwrap().num_rows();
    let mut ids_b = second.durability().unwrap().persisted_ids();
    ids_b.sort_unstable();
    let probe_b = flat(&second.execute_sql_seeded(Q, PROBE_SEED).unwrap());

    assert_eq!(rows_a, ROWS + 1_000);
    assert_eq!(rows_a, rows_b);
    assert_eq!(ids_a, ids_b, "persisted synopsis set must be stable");
    assert_eq!(probe_a, probe_b, "recovered answers must be stable");
    assert_eq!(report_a.rows, report_b.rows);
    assert!(report_b.synopses_recovered >= report_a.synopses_recovered);
}

/// Property 4: seeded fault schedules. Each seed plants one deterministic
/// fault (torn write, short read, failed fsync, or crash-point panic)
/// somewhere in a persistent workload. Whatever happens to the writer —
/// clean completion, a typed error, or a simulated crash — a fault-free
/// recovery from the surviving bytes must land on a commit boundary: whole
/// appends only, a queryable engine, and an idempotent second recovery.
#[test]
fn seeded_fault_schedules_never_corrupt_recovery() {
    const BASE: usize = 256;
    const APPEND: usize = 32;
    const SEEDS: u64 = 48;
    const HORIZON: u64 = 400;
    const SQL: &str = "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag";

    for seed in 0..SEEDS {
        let mem = Arc::new(MemVfs::new());
        let faulty = FaultVfs::new(mem.clone(), FaultPlan::seeded(seed, HORIZON));

        // The writer: open persistent, interleave appends and queries. Any
        // step may fail or "crash"; both are acceptable — corruption is not.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let cat = orders_catalog(BASE);
            let cfg = config(&cat);
            let eng = TasterEngine::open_durable_with_vfs(cat.clone(), cfg, &faulty, dir())?;
            for i in 0..3 {
                let lo = BASE + i * APPEND;
                cat.table("orders")
                    .unwrap()
                    .append(&orders_rows(lo, lo + APPEND))
                    .map_err(taster_repro::engine::EngineError::Storage)?;
                eng.execute_sql(SQL)?;
            }
            Ok::<(), taster_repro::engine::EngineError>(())
        }));
        let crashed = outcome.is_err();
        let errored = matches!(outcome, Ok(Err(_)));

        // Fault-free recovery from whatever the writer left behind.
        let cat = orders_catalog(BASE);
        let cfg = config(&cat);
        drop(cat);
        let (eng, report) = TasterEngine::recover_with_vfs(cfg, mem.as_ref(), dir())
            .unwrap_or_else(|e| {
                panic!("seed {seed} (crashed={crashed} errored={errored}): recovery failed: {e}")
            });

        // Whole committed appends only — never a torn batch.
        let rows = eng
            .catalog_handle()
            .table("orders")
            .map(|t| t.num_rows())
            .unwrap_or(0);
        assert!(
            rows == 0 || (rows >= BASE && (rows - BASE).is_multiple_of(APPEND)),
            "seed {seed}: {rows} rows is not a commit boundary ({report:?})"
        );
        if rows > 0 {
            let res = eng.execute_sql(SQL).unwrap_or_else(|e| {
                panic!("seed {seed}: recovered engine cannot answer: {e}")
            });
            assert!(res.result.num_groups() > 0);
        }

        // Idempotence holds after fault-shaped logs too.
        drop(eng);
        let (again, _) = TasterEngine::recover_with_vfs(cfg, mem.as_ref(), dir()).unwrap();
        let rows_again = again
            .catalog_handle()
            .table("orders")
            .map(|t| t.num_rows())
            .unwrap_or(0);
        assert_eq!(rows, rows_again, "seed {seed}: recovery not idempotent");
    }
}

/// Mirrors the README "Durable warehouse" quickstart line for line (on a real
/// temp directory, as a reader would run it) so the snippet can't rot.
/// Dictionary-encoded string partitions survive the durable round-trip: the
/// checkpoint writes the codes + dictionary wire form (not decoded strings),
/// recovery rebuilds the table with its sealed partitions still encoded, and
/// a string group-by plus a string filter answer byte-identically across the
/// crash — including appends landed on the raw unsealed tail beforehand.
#[test]
fn dict_encoding_survives_durable_round_trip() {
    const KINDS: [&str; 4] = ["ash", "beech", "cedar", "fig"];
    let kinds_rows = |lo: usize, hi: usize| {
        BatchBuilder::new()
            .column("o_id", (lo as i64..hi as i64).collect::<Vec<_>>())
            .column(
                "o_kind",
                (lo..hi).map(|i| KINDS[i * i % 4].to_string()).collect::<Vec<_>>(),
            )
            .column("o_price", (lo..hi).map(|i| (i % 97) as f64).collect::<Vec<_>>())
            .build()
            .unwrap()
    };
    const GROUP_Q: &str = "SELECT o_kind, SUM(o_price) FROM orders GROUP BY o_kind";
    const FILTER_Q: &str =
        "SELECT o_kind, COUNT(*) FROM orders WHERE o_kind = 'beech' GROUP BY o_kind";

    let vfs = MemVfs::new();
    let cat = Catalog::new();
    cat.register(Table::from_batch("orders", kinds_rows(0, 8_000), 8).unwrap());
    let cat = Arc::new(cat);
    let cfg = config(&cat);

    let (group_before, filter_before) = {
        let eng = TasterEngine::open_durable_with_vfs(cat.clone(), cfg, &vfs, dir()).unwrap();
        // Appends below the seal bound leave a raw tail next to the eight
        // encoded partitions — the mixed layout must round-trip too.
        cat.table("orders").unwrap().append(&kinds_rows(8_000, 8_300)).unwrap();
        let (dicts, plain) = cat.table("orders").unwrap().snapshot().encoding_counts();
        assert!(dicts >= 8 && plain >= 1, "want a mixed layout, got ({dicts}, {plain})");
        (
            flat(&eng.execute_sql(GROUP_Q).unwrap()),
            flat(&eng.execute_sql(FILTER_Q).unwrap()),
        )
    };
    drop(cat);

    let (eng, report) = TasterEngine::recover_with_vfs(cfg, &vfs, dir()).unwrap();
    assert_eq!(report.tables, 1);
    assert_eq!(report.rows, 8_300);
    let snap = eng.catalog_handle().table("orders").unwrap().snapshot();
    let (dicts, plain) = snap.encoding_counts();
    assert!(
        dicts >= 8,
        "sealed partitions must come back dict-encoded, got ({dicts}, {plain})"
    );
    assert_eq!(group_before, flat(&eng.execute_sql(GROUP_Q).unwrap()));
    assert_eq!(filter_before, flat(&eng.execute_sql(FILTER_Q).unwrap()));
}

#[test]
fn readme_persistence_quickstart() {
    let dir = std::env::temp_dir().join(format!(
        "taster-readme-quickstart-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.as_path();

    // --- README snippet starts here ---
    let batch = BatchBuilder::new()
        .column("grp", (0..50_000i64).map(|i| i % 5).collect::<Vec<_>>())
        .column("v", (0..50_000).map(|i| (i % 97) as f64).collect::<Vec<_>>())
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("events", batch, 8).unwrap());

    // Open durably: tables are checkpointed into `dir`, every append is
    // WAL-logged before it publishes, the warehouse syncs after each query.
    let engine =
        TasterEngine::open_durable(Arc::new(cat), TasterConfig::default(), dir).unwrap();

    let q = "SELECT grp, SUM(v) FROM events GROUP BY grp ERROR WITHIN 10% AT CONFIDENCE 95%";
    engine.execute_sql(q).unwrap(); // builds + persists a sample of `events`
    assert!(!engine.execute_sql(q).unwrap().reused_synopses.is_empty());
    drop(engine); // or SIGKILL mid-write — recovery replays to a commit boundary

    // Restart: replay the WAL, reload checkpointed tables + persisted synopses.
    let (engine, report) = TasterEngine::recover(TasterConfig::default(), dir).unwrap();
    assert!(report.tables == 1 && report.synopses_recovered >= 1);

    // First answer after the restart comes straight from the recovered
    // sample: no rebuild, not a single base row scanned.
    let res = engine.execute_sql(q).unwrap();
    assert!(!res.reused_synopses.is_empty());
    assert_eq!(res.result.metrics.base_rows_scanned, 0);
    // --- README snippet ends here ---

    std::fs::remove_dir_all(dir).ok();
}
