//! Parity property tests for the PR's two morsel/byte-key surgeries
//! (mirroring `tests/kernel_parity.rs`):
//!
//! * the morsel-parallel hash-join probe must produce *identical* output to
//!   the serial probe for any thread count — matches concatenate in morsel
//!   order, and chains stay in build-row order within a probe row;
//! * the row-encoded byte keys the samplers feed their sketches must group
//!   rows exactly like the retained per-row `Vec<Value>` keys: two rows share
//!   a byte key iff their `Vec<Value>` keys compare equal.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use taster_repro::engine::physical::{hash_join, hash_join_with_threads};
use taster_repro::storage::batch::BatchBuilder;
use taster_repro::storage::row_key::RowKeys;
use taster_repro::storage::{ColumnData, RecordBatch, Value};

fn keyed_batch(rng: &mut SmallRng, rows: usize, prefix: &str) -> RecordBatch {
    let k1: Vec<i64> = (0..rows).map(|_| rng.random_range(-5..6i64)).collect();
    let k2: Vec<String> = (0..rows)
        .map(|_| ["red", "green", "blue", ""][rng.random_range(0..4usize)].to_string())
        .collect();
    let payload: Vec<f64> = (0..rows).map(|i| i as f64).collect();
    BatchBuilder::new()
        .column(format!("{prefix}k1"), k1)
        .column(format!("{prefix}k2"), k2)
        .column(format!("{prefix}v"), payload)
        .build()
        .unwrap()
}

#[test]
fn parallel_probe_matches_serial_probe_across_thread_counts() {
    let mut rng = SmallRng::seed_from_u64(0xbeef);
    for case in 0..20 {
        let left_rows = rng.random_range(1..600usize);
        let right_rows = rng.random_range(1..300usize);
        let left = keyed_batch(&mut rng, left_rows, "l_");
        let right = keyed_batch(&mut rng, right_rows, "r_");
        let lk = ["l_k1".to_string(), "l_k2".to_string()];
        let rk = ["r_k1".to_string(), "r_k2".to_string()];
        let serial = hash_join_with_threads(&left, &right, &lk, &rk, 1).unwrap();
        for threads in 2..=4usize {
            let parallel = hash_join_with_threads(&left, &right, &lk, &rk, threads).unwrap();
            assert_eq!(
                serial, parallel,
                "case {case}: probe output diverged at {threads} threads"
            );
        }
        // The default entry point (env-driven thread count) agrees too.
        let default = hash_join(&left, &right, &lk, &rk).unwrap();
        assert_eq!(serial, default, "case {case}: default join diverged");
    }
}

#[test]
fn parallel_probe_handles_empty_and_skewed_sides() {
    let mut rng = SmallRng::seed_from_u64(7);
    let left = keyed_batch(&mut rng, 500, "l_");
    let empty = keyed_batch(&mut rng, 1, "r_");
    let no_match = {
        // A right side whose keys never match the left's range.
        let k1: Vec<i64> = (0..50).map(|i| 1_000 + i).collect();
        let k2: Vec<String> = (0..50).map(|_| "none".to_string()).collect();
        BatchBuilder::new()
            .column("r_k1", k1)
            .column("r_k2", k2)
            .build()
            .unwrap()
    };
    let lk = ["l_k1".to_string(), "l_k2".to_string()];
    let rk = ["r_k1".to_string(), "r_k2".to_string()];
    for threads in 1..=4usize {
        let out = hash_join_with_threads(&left, &no_match, &lk, &rk, threads).unwrap();
        assert_eq!(out.num_rows(), 0, "threads={threads}");
        let out = hash_join_with_threads(&left, &empty, &lk, &rk, threads).unwrap();
        let serial = hash_join_with_threads(&left, &empty, &lk, &rk, 1).unwrap();
        assert_eq!(out, serial, "threads={threads}");
    }
}

fn value_key(cols: &[&ColumnData], row: usize) -> Vec<Value> {
    cols.iter().map(|c| c.value(row)).collect()
}

#[test]
fn sampler_byte_keys_group_rows_like_value_keys() {
    let mut rng = SmallRng::seed_from_u64(0x5a3);
    for case in 0..30 {
        let rows = rng.random_range(2..150usize);
        // Mixed-type stratification: ints in a small range, floats that are
        // often integral (exercising Int/Float normalization), short strings,
        // bools.
        let ints: Vec<i64> = (0..rows).map(|_| rng.random_range(-3..4i64)).collect();
        let floats: Vec<f64> = (0..rows)
            .map(|_| (rng.random_range(-6..7i64) as f64) / 2.0)
            .collect();
        let strs: Vec<String> = (0..rows)
            .map(|_| ["a", "b", ""][rng.random_range(0..3usize)].to_string())
            .collect();
        let bools: Vec<bool> = (0..rows).map(|_| rng.random_range(0..2i64) == 1).collect();
        let batch = BatchBuilder::new()
            .column("i", ints)
            .column("f", floats)
            .column("s", strs)
            .column("b", bools)
            .build()
            .unwrap();
        let cols: Vec<&ColumnData> = ["i", "f", "s", "b"]
            .iter()
            .map(|n| batch.column_by_name(n).unwrap())
            .collect();
        let keys = RowKeys::encode_columns(&cols, rows);
        for i in 0..rows {
            for j in (i + 1)..rows {
                let bytes_equal = keys.key(i) == keys.key(j);
                let values_equal = value_key(&cols, i) == value_key(&cols, j);
                assert_eq!(
                    bytes_equal, values_equal,
                    "case {case}: rows {i}/{j} grouped differently \
                     (bytes {bytes_equal} vs values {values_equal})"
                );
            }
        }
    }
}
