//! Session-service behaviour under load: typed backpressure, budget
//! rejections, lease hygiene after disconnects, and per-session explain.
//!
//! These tests drive the service both in-process (the exact pipeline the TCP
//! path uses) and over real sockets. The invariants: an overloaded server
//! answers a typed `Overloaded` rejection — it never hangs, never panics,
//! never queues beyond its cap; abandoned sessions leak nothing (the store's
//! lease table and graveyard drain to zero once the storm passes); and
//! explain output rides each session's own reply, so concurrent explains
//! cannot interleave.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use taster_repro::server::{
    Client, RejectKind, Response, ServiceConfig, SessionService, TcpServer, TenantBudgets,
};
use taster_repro::storage::{batch::BatchBuilder, Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

const ROWS: usize = 100_000;
/// Exact full scan: slow enough (in debug builds) to keep workers busy while
/// a storm of submits hits admission.
const SLOW_Q: &str = "SELECT o_id, o_price FROM orders WHERE o_price > 500";
const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";

fn catalog() -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..ROWS as i64).collect::<Vec<_>>())
        .column("o_cust", (0..ROWS as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..ROWS as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    Arc::new(cat)
}

fn service(config: ServiceConfig) -> Arc<SessionService> {
    let cat = catalog();
    let taster_config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    SessionService::start(Arc::new(TasterEngine::new(cat, taster_config)), config)
}

#[test]
fn overload_storm_rejects_typed_never_hangs() {
    let service = service(ServiceConfig {
        workers: 2,
        max_queue: 2,
        default_budgets: TenantBudgets::default(),
    });
    let limit = 4; // workers + max_queue
    const SESSIONS: usize = 16;
    const MAX_ROUNDS: usize = 20;

    let overloaded = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    for _ in 0..MAX_ROUNDS {
        let start = Barrier::new(SESSIONS);
        std::thread::scope(|scope| {
            for _ in 0..SESSIONS {
                let session = service.session("storm");
                let start = &start;
                let overloaded = &overloaded;
                let served = &served;
                scope.spawn(move || {
                    start.wait();
                    // submit() is synchronous: returning at all is the
                    // no-hang property under test.
                    match session.query(SLOW_Q) {
                        Response::Reply(reply) => {
                            assert!(reply.rows > 0, "the scan returns rows");
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Reject { kind, message } => {
                            assert_eq!(
                                kind,
                                RejectKind::Overloaded,
                                "only admission may reject this query: {message}"
                            );
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        if overloaded.load(Ordering::Relaxed) > 0 && served.load(Ordering::Relaxed) > 0 {
            break;
        }
    }
    assert!(
        overloaded.load(Ordering::Relaxed) > 0,
        "{SESSIONS} sessions racing a {limit}-slot service must overflow admission"
    );
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "admitted sessions must still be served during the storm"
    );

    let stats = service.admission_stats();
    assert!(
        stats.peak_inflight <= limit,
        "queue depth stayed bounded: {stats:?}"
    );
    assert_eq!(stats.inflight, 0, "every permit returned: {stats:?}");

    // The storm leaks nothing: plan-time leases all dropped, graveyard
    // reaped.
    assert_eq!(service.engine().store().outstanding_leases(), 0);
    assert_eq!(service.engine().store().graveyard_len(), 0);
}

#[test]
fn error_budget_rejections_are_typed() {
    let service = service(ServiceConfig::default());
    service.tenants().set_budgets(
        "metered",
        TenantBudgets {
            storage_bytes: None,
            floor_relative_error: 0.05,
        },
    );
    let session = service.session("metered");

    let tight = session.query(
        "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 1% AT CONFIDENCE 95%",
    );
    match tight {
        Response::Reject { kind, .. } => assert_eq!(kind, RejectKind::ErrorBudget),
        other => panic!("tighter-than-budget accuracy must be rejected, got {other:?}"),
    }
    assert!(
        matches!(session.query(APPROX_Q), Response::Reply(_)),
        "a within-budget request runs"
    );
    match session.query("SELEC nonsense") {
        Response::Reject { kind, .. } => assert_eq!(kind, RejectKind::Sql),
        other => panic!("malformed SQL must be a typed rejection, got {other:?}"),
    }
}

#[test]
fn tenant_storage_budget_evicts_oldest_synopsis() {
    let service = service(ServiceConfig::default());
    // A second table with the identical shape: the same template against it
    // reliably creates a second synopsis (the tuner already judged this
    // template worth materializing on `orders`).
    let twin = BatchBuilder::new()
        .column("o_id", (0..ROWS as i64).collect::<Vec<_>>())
        .column("o_cust", (0..ROWS as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..ROWS as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..ROWS).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    service
        .engine()
        .catalog_handle()
        .register(Table::from_batch("orders_twin", twin, 8).unwrap());

    // A 1-byte budget: any second synopsis pushes the first out.
    service.tenants().set_budgets(
        "small",
        TenantBudgets {
            storage_bytes: Some(1),
            floor_relative_error: 0.0,
        },
    );
    let session = service.session("small");
    assert!(matches!(session.query(APPROX_Q), Response::Reply(_)));
    let first_ids = service.engine().store().materialized_ids();
    assert!(!first_ids.is_empty(), "the first template built a synopsis");

    // The same template on the twin table → a different synopsis id → over
    // budget → the tenant's oldest synopsis is evicted from the store.
    let second = session.query(
        "SELECT o_flag, SUM(o_price) FROM orders_twin GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%",
    );
    assert!(matches!(second, Response::Reply(_)));
    let remaining = service.engine().store().materialized_ids();
    assert!(
        first_ids.iter().any(|id| !remaining.contains(id)),
        "over-budget tenant keeps only its newest synopsis: {first_ids:?} -> {remaining:?}"
    );
}

/// Two sessions explaining simultaneously must each get their own complete
/// plan comparison — the regression this guards: `TASTER_EXPLAIN=1` used to
/// print to the engine's global stderr, interleaving concurrent sessions.
#[test]
fn concurrent_explains_never_interleave() {
    let service = service(ServiceConfig::default());
    const ROUNDS: usize = 10;
    let queries = [SLOW_Q, APPROX_Q];
    let start = Barrier::new(queries.len());
    std::thread::scope(|scope| {
        for sql in queries {
            let session = service.session("explainer");
            let start = &start;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    start.wait();
                    let response = session.query_explained(sql);
                    let Response::Reply(reply) = response else {
                        panic!("explain query failed: {response:?}");
                    };
                    let explain = reply.explain.expect("explain was requested");
                    assert!(
                        explain.starts_with("plan for: "),
                        "a complete block starts with its own header: {explain:?}"
                    );
                    assert!(
                        explain.contains(sql),
                        "the block describes this session's query"
                    );
                    assert_eq!(
                        explain.matches("plan for: ").count(),
                        1,
                        "exactly one header per block — no interleaving: {explain:?}"
                    );
                }
            });
        }
    });
}

/// The engine-wide toggle fills `explain` for every session's queries
/// without touching any global stream.
#[test]
fn engine_wide_explain_toggle_rides_the_result() {
    let service = service(ServiceConfig::default());
    let session = service.session("t");
    let Response::Reply(off) = session.query(SLOW_Q) else {
        panic!("query failed")
    };
    assert!(off.explain.is_none(), "explain off by default");

    service.engine().set_explain(true);
    let Response::Reply(on) = session.query(SLOW_Q) else {
        panic!("query failed")
    };
    let explain = on.explain.expect("toggle routes explain into the result");
    assert!(explain.starts_with("plan for: "));

    service.engine().set_explain(false);
    let Response::Reply(off_again) = session.query(SLOW_Q) else {
        panic!("query failed")
    };
    assert!(off_again.explain.is_none());
}

/// Mirrors the README "Serving over TCP" quickstart — keep the two in sync.
#[test]
fn readme_tcp_quickstart_works() {
    let service = service(ServiceConfig::default());
    let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.local_addr(), "acme").expect("connect");
    match client.query(APPROX_Q, false).expect("wire round-trip") {
        Response::Reply(reply) => {
            assert!(reply.approximate, "the sampled plan answers this template");
            assert_eq!(reply.groups.len(), 5, "one group per o_flag value");
        }
        Response::Reject { kind, message } => panic!("rejected: {kind} {message}"),
    }
    server.stop();
}

/// Sessions that connect, fire a query, and vanish without reading the reply
/// must leak nothing: every admission permit returns and the store's lease
/// table and graveyard drain to zero.
#[test]
fn disconnected_sessions_drop_leases_and_permits() {
    let service = service(ServiceConfig {
        workers: 2,
        max_queue: 4,
        default_budgets: TenantBudgets::default(),
    });
    let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for _ in 0..12 {
            scope.spawn(move || {
                // Fire the request, then hang up without reading the reply
                // (Client::query would block on the response, so frame the
                // request by hand over a raw stream).
                use taster_repro::server::proto::write_frame;
                use taster_repro::server::Request;
                let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
                let request = Request {
                    tenant: "ghost".to_string(),
                    explain: false,
                    sql: APPROX_Q.to_string(),
                };
                write_frame(&mut raw, &request.encode()).expect("send frame");
                drop(raw); // disconnect before the reply
            });
        }
    });

    // Drain: the workers finish whatever was admitted; permits and leases
    // must all return.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = service.admission_stats();
        if stats.inflight == 0
            && service.engine().store().outstanding_leases() == 0
            && service.engine().store().graveyard_len() == 0
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned sessions leaked permits or leases: {stats:?}, \
             leases={}, graveyard={}",
            service.engine().store().outstanding_leases(),
            service.engine().store().graveyard_len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();
}

#[test]
fn shutdown_is_typed_and_idempotent() {
    let service = service(ServiceConfig::default());
    let session = service.session("t");
    assert!(matches!(session.query(SLOW_Q), Response::Reply(_)));
    service.shutdown();
    service.shutdown(); // idempotent
    match session.query(SLOW_Q) {
        Response::Reject { kind, .. } => assert_eq!(kind, RejectKind::Internal),
        other => panic!("submits after shutdown must reject, got {other:?}"),
    }
}
