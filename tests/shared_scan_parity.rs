//! Shared-scan parity: N queries coalesced onto one morsel pass must be
//! **bit-identical** to the same queries run solo.
//!
//! The shared-scan registry hands every attached query the leader's batch;
//! if sharing changed results in any way (row order, float formatting from a
//! different bit pattern, a stale snapshot) this property test catches it,
//! because the reference run never shares anything. The scan templates are
//! **non-aggregate** on purpose: an aggregate without an `ERROR WITHIN`
//! clause is still approximable under the engine's default accuracy spec, so
//! its plan (and hence its result) would depend on tuner state rather than
//! on the scan under test. Runs under whatever `TASTER_THREADS` the
//! environment sets — CI sweeps 1 and 4, covering both the serial and the
//! morsel-parallel pass implementations.
//!
//! The second test races queries against a concurrent `Table::append`, so
//! attach points straddle snapshot versions: the scan key includes the
//! snapshot version, hence every query must see exactly the before- or the
//! after-append result, never a mix.
//!
//! Threads never assert between barrier rounds — a mid-round panic would
//! strand the other threads on the barrier and turn a failure into a hang.
//! Every thread collects, the main thread asserts after joining.

use std::sync::{Arc, Barrier};

use taster_repro::storage::{batch::BatchBuilder, Catalog, RecordBatch, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

/// Exact, non-approximable templates (non-aggregate → the planner has no
/// synopsis candidate; the full filtered scan IS the query).
const SCAN_WIDE: &str = "SELECT o_id, o_price FROM orders WHERE o_price > 500";
const SCAN_NARROW: &str = "SELECT o_id, o_flag, o_price FROM orders WHERE o_price > 990";
/// Approximate template mixed in: its build/reuse path must stay correct
/// while exact queries share passes around it.
const APPROX_Q: &str =
    "SELECT o_flag, SUM(o_price) FROM orders GROUP BY o_flag ERROR WITHIN 10% AT CONFIDENCE 95%";

const APPROX_SEED: u64 = 0x5ca1_ab1e;
const ROWS: usize = 50_000;
const THREADS: usize = 8;
const ROUNDS: usize = 20;

fn catalog(rows: usize) -> Arc<Catalog> {
    let cat = Catalog::new();
    let orders = BatchBuilder::new()
        .column("o_id", (0..rows as i64).collect::<Vec<_>>())
        .column("o_cust", (0..rows as i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..rows as i64).map(|i| i % 5).collect::<Vec<_>>())
        .column(
            "o_price",
            (0..rows).map(|i| (i % 997) as f64).collect::<Vec<_>>(),
        )
        .build()
        .unwrap();
    cat.register(Table::from_batch("orders", orders, 8).unwrap());
    Arc::new(cat)
}

fn engine(cat: Arc<Catalog>) -> TasterEngine {
    let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
    TasterEngine::new(cat, config)
}

/// A result flattened to a bit-comparable string: the relational output's
/// debug form (float formatting distinguishes bit patterns, including the
/// sign of zero) plus the sorted per-group aggregate bit patterns.
fn run_one(engine: &TasterEngine, sql: &str, seed: u64) -> Result<String, String> {
    let res = engine.execute_sql_seeded(sql, seed).map_err(|e| e.to_string())?;
    let mut groups: Vec<String> = res
        .result
        .groups
        .iter()
        .map(|g| {
            format!(
                "{:?}={:?}",
                g.key,
                g.aggregates.iter().map(|a| a.value.to_bits()).collect::<Vec<_>>()
            )
        })
        .collect();
    groups.sort();
    Ok(format!("{:?}|{groups:?}", res.result.rows))
}

/// The per-thread template: threads 0..5 share `SCAN_WIDE`, 5..7 share
/// `SCAN_NARROW` (several identical scans race every round), thread 7
/// exercises the synopsis path with a pinned seed.
fn template(thread: usize) -> (&'static str, u64) {
    match thread {
        0..=4 => (SCAN_WIDE, 1),
        5 | 6 => (SCAN_NARROW, 2),
        _ => (APPROX_Q, APPROX_SEED),
    }
}

#[test]
fn coalesced_queries_are_bit_identical_to_solo_runs() {
    // Solo reference: a fresh engine, every template once, nothing shared
    // (single thread → no concurrent pass to attach to).
    let reference: Vec<String> = {
        let eng = engine(catalog(ROWS));
        (0..THREADS)
            .map(|t| {
                let (sql, seed) = template(t);
                run_one(&eng, sql, seed).expect("solo reference must run")
            })
            .collect()
    };

    let eng = engine(catalog(ROWS));
    let start = Barrier::new(THREADS);
    let collected: Vec<Vec<Result<String, String>>> = std::thread::scope(|scope| {
        let eng = &eng;
        let start = &start;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let (sql, seed) = template(t);
                    (0..ROUNDS)
                        .map(|_| {
                            start.wait(); // release the round as a pack
                            run_one(eng, sql, seed)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread must not panic"))
            .collect()
    });

    for (t, rounds) in collected.iter().enumerate() {
        let (sql, _) = template(t);
        for (round, outcome) in rounds.iter().enumerate() {
            match outcome {
                Ok(flat) => assert_eq!(
                    flat, &reference[t],
                    "round {round}: shared-scan result diverged from the solo run for {sql}"
                ),
                Err(err) => panic!("round {round}: {sql} failed under sharing: {err}"),
            }
        }
    }

    let stats = eng.shared_scan_stats();
    assert!(
        stats.attached >= 1,
        "with {THREADS} threads x {ROUNDS} barrier-released rounds of identical \
         scans, at least one query must have attached: {stats:?}"
    );
    assert!(stats.passes >= 1, "someone must have led a pass: {stats:?}");
}

#[test]
fn append_straddling_queries_see_exactly_one_snapshot() {
    let cat = catalog(ROWS);
    let eng = engine(Arc::clone(&cat));
    let table = cat.table("orders").unwrap();

    let appended: RecordBatch = BatchBuilder::new()
        .column("o_id", (ROWS as i64..ROWS as i64 + 1000).collect::<Vec<_>>())
        .column("o_cust", (0..1000i64).map(|i| i % 100).collect::<Vec<_>>())
        .column("o_flag", (0..1000i64).map(|i| i % 5).collect::<Vec<_>>())
        .column("o_price", (0..1000).map(|i| (i % 997) as f64).collect::<Vec<_>>())
        .build()
        .unwrap();

    let ref_before = run_one(&eng, SCAN_NARROW, 1).expect("before-append reference");
    // The after-append reference comes from a second engine over an
    // identical, already-grown catalog — the engine under test must not see
    // the grown table before its append happens mid-race.
    let ref_after = {
        let cat2 = catalog(ROWS);
        cat2.table("orders").unwrap().append(&appended).unwrap();
        let eng2 = engine(cat2);
        run_one(&eng2, SCAN_NARROW, 1).expect("after-append reference")
    };
    assert_ne!(ref_before, ref_after, "the append must change the result");

    // Race: THREADS query threads + one appender, all released together.
    // Attach points straddle the snapshot flip; each query must match one of
    // the two references exactly.
    let start = Barrier::new(THREADS + 1);
    let collected: Vec<Vec<Result<String, String>>> = std::thread::scope(|scope| {
        let eng = &eng;
        let start = &start;
        let table = &table;
        let appended = &appended;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    start.wait();
                    (0..8).map(|_| run_one(eng, SCAN_NARROW, 1)).collect()
                })
            })
            .collect();
        let appender = scope.spawn(move || {
            start.wait();
            table.append(appended).expect("concurrent append");
        });
        let collected = handles
            .into_iter()
            .map(|h| h.join().expect("query thread must not panic"))
            .collect();
        appender.join().expect("appender must not panic");
        collected
    });

    for rounds in &collected {
        for outcome in rounds {
            let flat = outcome.as_ref().expect("straddling query must not fail");
            assert!(
                flat == &ref_before || flat == &ref_after,
                "a query mixed rows across snapshot versions"
            );
        }
    }

    // After the race settles, every query sees the appended rows.
    assert_eq!(run_one(&eng, SCAN_NARROW, 1).unwrap(), ref_after);
}
