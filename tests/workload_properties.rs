//! Property-based integration tests: estimator unbiasedness and group
//! coverage over randomly generated data and queries, spanning the storage,
//! synopses, engine and taster crates.
//!
//! proptest is unavailable in the offline build environment, so the
//! properties are checked over a seeded sweep of randomized cases instead of
//! proptest's shrinking search; each case prints its inputs on failure.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

mod common;
use common::stats_assert;

use std::sync::Arc;
use taster_repro::engine::physical::execute;
use taster_repro::engine::{parse_query, ExecutionContext};
use taster_repro::storage::batch::BatchBuilder;
use taster_repro::storage::{Catalog, Table};
use taster_repro::taster::{TasterConfig, TasterEngine};

/// Build a catalog with a single fact table whose group structure is driven
/// by the generated inputs.
fn catalog(rows: usize, groups: i64, seed: u64) -> Arc<Catalog> {
    let mut grp = Vec::with_capacity(rows);
    let mut val = Vec::with_capacity(rows);
    let mut state = seed | 1;
    for i in 0..rows {
        // Simple xorshift so data depends deterministically on the seed.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        grp.push((state % groups as u64) as i64);
        val.push(((state >> 8) % 1_000) as f64 + (i % 7) as f64);
    }
    let batch = BatchBuilder::new()
        .column("f_group", grp)
        .column("f_value", val)
        .build()
        .unwrap();
    let cat = Catalog::new();
    cat.register(Table::from_batch("facts", batch, 4).unwrap());
    Arc::new(cat)
}

/// For any generated table, Taster's approximate SUM/COUNT per group is
/// within a loose relative error of the exact answer and never misses a
/// group (the distinct sampler / uniform-sampler coverage guarantee).
#[test]
fn approximate_group_by_is_unbiased_and_complete() {
    let mut rng = SmallRng::seed_from_u64(aq_seed());
    for case in 0..12 {
        let rows: usize = rng.random_range(5_000..20_000);
        let groups: i64 = rng.random_range(2..30);
        let seed: u64 = rng.random_range(1..500);
        let ctx = format!("case {case}: rows={rows} groups={groups} seed={seed}");

        let cat = catalog(rows, groups, seed);
        let sql = "SELECT f_group, SUM(f_value), COUNT(*) FROM facts GROUP BY f_group \
                   ERROR WITHIN 10% AT CONFIDENCE 95%";

        let exact_plan = parse_query(sql).unwrap().to_exact_plan(&cat).unwrap();
        let exact = execute(&exact_plan, &ExecutionContext::new(cat.clone())).unwrap();

        let config = TasterConfig::with_budget_fraction(cat.total_size_bytes(), 1.0);
        let taster = TasterEngine::new(cat, config);
        // Run twice: the second execution exercises the reuse path.
        let _ = taster.execute_sql(sql).unwrap();
        let approx = taster.execute_sql(sql).unwrap();

        let (err, missed) = approx.result.error_vs(&exact);
        assert_eq!(missed, 0, "missed groups ({ctx})");
        stats_assert::assert_bounded(err, 0.35, &ctx);
        assert_eq!(approx.result.num_groups(), exact.num_groups(), "{ctx}");
    }
}

/// The synopsis warehouse never exceeds its quota, whatever the workload
/// mix and budget.
#[test]
fn warehouse_quota_is_invariant() {
    let mut rng = SmallRng::seed_from_u64(aq_seed() ^ 1);
    for case in 0..12 {
        let rows: usize = rng.random_range(4_000..10_000);
        let budget_divisor: usize = rng.random_range(2..20);
        let seed: u64 = rng.random_range(1..200);
        let ctx = format!("case {case}: rows={rows} divisor={budget_divisor} seed={seed}");

        let cat = catalog(rows, 10, seed);
        let budget = cat.total_size_bytes() / budget_divisor;
        let config = TasterConfig {
            warehouse_quota_bytes: budget,
            buffer_quota_bytes: budget / 2 + 1,
            ..TasterConfig::default()
        };
        let taster = TasterEngine::new(cat, config);
        for q in [
            "SELECT f_group, AVG(f_value) FROM facts GROUP BY f_group",
            "SELECT f_group, SUM(f_value) FROM facts GROUP BY f_group",
            "SELECT COUNT(*) FROM facts WHERE f_value > 100",
        ] {
            let _ = taster.execute_sql(q).unwrap();
            assert!(
                taster.store().usage().warehouse_bytes <= budget,
                "warehouse over quota ({ctx})"
            );
        }
    }
}

/// Fixed base seed for the sweeps; change to explore a different slice of the
/// input space locally.
fn aq_seed() -> u64 {
    0x7a57e5
}

